"""Stacked-batch SPICE: K same-topology variants solved as one block.

Monte-Carlo campaigns solve thousands of *variants of one topology* —
same nodes, same stamps, different device tables — and the scalar path
pays the full python/numpy dispatch overhead of every assembly once per
variant.  This module removes that multiplier: the scalar control flow
(Newton damping, line search, jacobian reuse, transient step control,
DC fallback tiers, even the WL_crit bisection above it) is transcribed
into *generator coroutines*, one per batch member, that suspend at
every residual/Jacobian request.  A single-threaded driver collects the
suspended requests each tick and serves them with one batched assembly
over a ``(K, size)`` state block — one scatter-add per stamp kind for
the whole batch instead of one per member.

Bit-exactness is the design contract, not an aspiration: every batched
kernel replicates the scalar assembly expression-for-expression (same
operation order, same elementwise arithmetic, per-member ``matmul`` for
the linear stamp because a fused dgemm is *not* bit-stable), so a batch
of any size produces solution vectors bit-identical to the scalar path.
``repro.verify`` leans on this — batch members can be audited by
re-running them scalar and comparing exactly.

What is deliberately different from the scalar path (documented, not
accidental):

* the Jacobian block is assembled every tick for every live member,
  even for residual-only (line search) requests — per-member it would
  be wasted work, batched it is almost free, and the residual is
  computed independently so delivered values are unchanged;
* ``tables.evals``/``tables.eval_points`` telemetry counters are not
  incremented (the stacked kernel bypasses ``CubicTable2D.evaluate``);
  ``batch.table_points`` counts the stacked evaluations instead;
* telemetry spans and wall-clock timers measure a member's span of
  life including time parked while other members advance — per-member
  exclusive wall time has no meaning under cooperative scheduling, so
  ``dcop``/``transient`` spans are skipped entirely;
* ``verify`` in-loop audits still run against the member's own scalar
  :class:`MnaSystem`, so enabling a verify session inside a batch is
  supported (the engine instead audits whole members by scalar re-run).

Members advance at their own pace — a member that converges early
leaves the batch, shrinking the active block; a member that raises
(e.g. :class:`ConvergenceError`) is recorded as failed and the rest
continue.  The engine layer retries failed members on the scalar path.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.dcop import (
    ConvergenceError,
    SolverOptions,
    _factorize,
    _initial_vector,
    _record_newton,
    _seed_vector,
    _tier_converged,
    _worst_residual_nodes,
)
from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.results import OperatingPoint, TransientResult
from repro.circuit.sparse import make_system
from repro.circuit.transient import _EPS, TransientOptions
from repro.devices.tables import CurrentTable
from repro.telemetry import core as telemetry
from repro.verify import audits as verify_audits
from repro.verify import core as verify

__all__ = [
    "BatchMember",
    "MemberOutcome",
    "run_generators",
    "newton_gen",
    "attempt_step_gen",
    "transient_gen",
    "solve_dc_gen",
]


class BatchMember:
    """One variant's identity and current assembler binding in a batch.

    Generators bind the member to the :class:`MnaSystem` they are about
    to solve via :meth:`install_system`; the driver compiles a stamping
    plan for that system lazily and rebuilds it whenever the binding
    (or the system's own compiled stamps) changes.
    """

    __slots__ = ("label", "system", "_plan")

    def __init__(self, label: str = ""):
        self.label = label
        self.system: MnaSystem | None = None
        self._plan = None

    def install_system(self, system: MnaSystem) -> None:
        self.system = system


@dataclass
class MemberOutcome:
    """Terminal state of one batch member."""

    member: BatchMember
    status: str  # "ok" | "error"
    value: object = None
    error: BaseException | None = field(default=None, repr=False)


# An assembly request, yielded by the generators below:
#   (x, t, gmin, transient, clamps, source_scale, want_jac)
# The driver answers with (f, jac) — f a fresh array, jac a view into
# the tick buffer (valid until the generator's next yield) or None.


class _TableRegistry:
    """Concatenated per-cell coefficients of every distinct device table.

    Distinct :class:`CurrentTable` objects seen across the batch are
    stacked (coefficient blocks concatenated, per-table grid parameters
    gathered per point), so one kernel call evaluates devices from any
    mix of Monte-Carlo variants.  The memory bound is the number of
    distinct quantized oxide scales (±5 % at quantum 0.0025 → ≤ 41
    tables), each of which already lives in the lru-cached models.
    """

    def __init__(self):
        self._index: dict[int, int] = {}
        self._currents: list[CurrentTable] = []
        self._dirty = True

    def slot_of(self, current_table: CurrentTable) -> int:
        key = id(current_table)
        slot = self._index.get(key)
        if slot is None:
            slot = len(self._currents)
            self._index[key] = slot
            self._currents.append(current_table)
            self._dirty = True
        return slot

    def _rebuild(self) -> None:
        tables = [ct._table for ct in self._currents]
        self._coeffs = np.concatenate([t._coeffs for t in tables])
        counts = [t._coeffs.shape[0] for t in tables]
        self._base = np.concatenate(
            [[0], np.cumsum(counts[:-1], dtype=np.intp)]
        ).astype(np.intp)
        self._x_start = np.array([t.x_grid.start for t in tables])
        self._x_stop = np.array([t.x_grid.stop for t in tables])
        self._x_inv = np.array([t.x_grid._inv_step for t in tables])
        self._x_hi = np.array([t.x_grid.count - 2 for t in tables], dtype=np.intp)
        self._y_start = np.array([t.y_grid.start for t in tables])
        self._y_stop = np.array([t.y_grid.stop for t in tables])
        self._y_inv = np.array([t.y_grid._inv_step for t in tables])
        self._y_hi = np.array([t.y_grid.count - 2 for t in tables], dtype=np.intp)
        self._nym1 = np.array([t.y_grid.count - 1 for t in tables], dtype=np.intp)
        self._sv = np.array([ct.shape_voltage for ct in self._currents])
        self._dirty = False

    def evaluate(
        self, tbl: np.ndarray, vgs: np.ndarray, vds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked replica of :meth:`CurrentTable.evaluate`, bit-exact.

        Each point evaluates against table ``tbl[k]``; the arithmetic
        mirrors ``CubicTable2D.evaluate`` (clamp, cell lookup, baked
        coefficient matmuls, tangent-plane extension) followed by the
        shape-factored current reconstruction, expression for
        expression.  The extension is applied unconditionally — at
        ``dx = dy = 0`` it reproduces the inside values exactly, so no
        per-call outside test is needed.
        """
        if self._dirty:
            self._rebuild()
        x, y = vgs, vds
        xc = np.minimum(np.maximum(x, self._x_start[tbl]), self._x_stop[tbl])
        yc = np.minimum(np.maximum(y, self._y_start[tbl]), self._y_stop[tbl])

        pos = (xc - self._x_start[tbl]) * self._x_inv[tbl]
        ix = np.minimum(pos.astype(np.intp), self._x_hi[tbl])
        tx = pos - ix
        pos = (yc - self._y_start[tbl]) * self._y_inv[tbl]
        iy = np.minimum(pos.astype(np.intp), self._y_hi[tbl])
        ty = pos - iy

        cells = self._coeffs[self._base[tbl] + ix * self._nym1[tbl] + iy]
        m = cells.shape[0]
        u = np.empty((m, 2, 4))
        v = np.empty((m, 4, 2))
        tx2 = tx * tx
        u[:, 0, 0] = 1.0
        u[:, 0, 1] = tx
        u[:, 0, 2] = tx2
        u[:, 0, 3] = tx2 * tx
        u[:, 1, 0] = 0.0
        u[:, 1, 1] = 1.0
        u[:, 1, 2] = 2.0 * tx
        u[:, 1, 3] = 3.0 * tx2
        ty2 = ty * ty
        v[:, 0, 0] = 1.0
        v[:, 1, 0] = ty
        v[:, 2, 0] = ty2
        v[:, 3, 0] = ty2 * ty
        v[:, 0, 1] = 0.0
        v[:, 1, 1] = 1.0
        v[:, 2, 1] = 2.0 * ty
        v[:, 3, 1] = 3.0 * ty2
        out = u @ cells @ v

        inv_hx = self._x_inv[tbl]
        inv_hy = self._y_inv[tbl]
        f = out[:, 0, 0]
        fx = out[:, 1, 0] * inv_hx
        fy = out[:, 0, 1] * inv_hy
        fxy = out[:, 1, 1] * (inv_hx * inv_hy)

        dx = x - xc
        dy = y - yc
        z = f + fx * dx + fy * dy + fxy * dx * dy
        dz_dvgs = fx + fxy * dy
        dz_dvds = fy + fxy * dx

        sv = self._sv[tbl]
        residue = np.exp(z)
        shape = np.sign(y) * (1.0 - np.exp(-np.abs(y) / sv))
        current = shape * residue
        di_dvgs = current * dz_dvgs
        di_dvds = (np.exp(-np.abs(y) / sv) / sv) * residue + current * dz_dvds
        return current, di_dvgs, di_dvds


class _MemberPlan:
    """Per-(member, system) stamping plan in the system's own layout.

    Group partition is by model *identity*, so two Monte-Carlo variants
    of one topology can flatten their transistors in different orders
    (shared quantized-scale models group differently).  The plan
    therefore carries the member's own per-device arrays and the
    member's own scatter index arrays — never another member's.
    """

    __slots__ = (
        "system", "lin", "vs_waves", "t_tbl", "t_sign", "t_width",
        "t_d", "t_g", "t_s", "t_fallback", "all_table",
    )

    def __init__(self, system: MnaSystem, registry: _TableRegistry):
        self.system = system
        self.lin = system._lin  # identity tracks invalidate_caches()
        self.vs_waves = system._vs_waves
        n_t = system._t_count
        self.t_tbl = np.full(n_t, -1, dtype=np.intp)
        self.t_sign = np.empty(n_t)
        self.t_width = np.empty(n_t)
        self.t_d = np.zeros(n_t, dtype=np.intp)
        self.t_g = np.zeros(n_t, dtype=np.intp)
        self.t_s = np.zeros(n_t, dtype=np.intp)
        self.t_fallback: list[tuple] = []
        for group in system._t_groups:
            model, sl, sign, width, d, g, s = group
            self.t_sign[sl] = sign
            self.t_width[sl] = width
            self.t_d[sl] = d
            self.t_g[sl] = g
            self.t_s[sl] = s
            table = getattr(model, "table", None)
            if isinstance(table, CurrentTable):
                self.t_tbl[sl] = registry.slot_of(table)
            else:
                # Non-table models (e.g. the MOSFET baseline) evaluate
                # through the scalar model call, member by member.
                self.t_fallback.append(group)
        self.all_table = not self.t_fallback


class _Layout:
    """Buffers and concatenated scatter arrays for one active set.

    Valid while the active members, their order, and each member's plan
    are unchanged; the driver rebuilds it on any change (bounded by the
    number of simulations run, not by tick count).  Device-evaluation
    caches live in the layout rows and reset on rebuild — a cache miss
    only re-evaluates pure functions, so resets never change results.
    """

    def __init__(self, plans: list[_MemberPlan]):
        self.plans = plans
        first = plans[0].system
        self.n = n = first.n_nodes
        self.size = size = first.size
        self.n_t = n_t = first._t_count
        bank = first._caps
        self.n_c = n_c = len(bank)
        for plan in plans:
            sys = plan.system
            if (
                sys.n_nodes != n
                or sys.size != size
                or sys._t_count != n_t
                or len(sys._caps) != n_c
            ):
                raise ValueError("batch members must share one topology")

        K = len(plans)
        self.X = np.zeros((K, size))
        self.XG = np.zeros((K, n + 1))
        self.F = np.zeros((K, size))
        self.Fr = self.F.reshape(-1)
        self.JAC = np.zeros((K, size, size))
        self.JACr = self.JAC.reshape(-1)
        self.JAC2 = self.JAC.reshape(K, size * size)
        self.LIN = np.empty((K, size, size))
        for i, plan in enumerate(plans):
            self.LIN[i] = plan.system._lin
        self.diag_flat = first._diag_flat

        if n_t:
            self.S = np.vstack([p.t_s for p in plans])
            self.G = np.vstack([p.t_g for p in plans])
            self.D = np.vstack([p.t_d for p in plans])
            self.SIGN = np.vstack([p.t_sign for p in plans])
            self.WIDTH = np.vstack([p.t_width for p in plans])
            self.TBL = np.vstack([p.t_tbl for p in plans])
            self.all_table = all(p.all_table for p in plans)
            # Residual/Jacobian scatters concatenate each member's OWN
            # index arrays offset to its row; within-member ordering is
            # preserved, so the single add.at matches the scalar adds.
            self.tf_idx = np.concatenate(
                [i * size + p.system._tf_idx for i, p in enumerate(plans)]
            )
            self.tf_sign = np.concatenate([p.system._tf_sign for p in plans])
            self.tf_mem = np.concatenate(
                [i * n_t + p.system._tf_member for i, p in enumerate(plans)]
            )
            self.tj_flat = np.concatenate(
                [i * size * size + p.system._tj_flat for i, p in enumerate(plans)]
            )
            self.tj_sign = np.concatenate([p.system._tj_sign for p in plans])
            self.tj_kind = np.concatenate([p.system._tj_kind for p in plans])
            self.tj_mem = np.concatenate(
                [i * n_t + p.system._tj_member for i, p in enumerate(plans)]
            )
            self.ID = np.zeros((K, n_t))
            self.GM = np.zeros((K, n_t))
            self.GDS = np.zeros((K, n_t))
            self.COEF = np.zeros((3, K, n_t))
            self.COEF2 = self.COEF.reshape(3, K * n_t)
            self.T_X = np.full((K, n), np.nan)
            self.T_VALID = np.zeros(K, dtype=bool)

        if n_c:
            # Capacitor wiring (nodes, signs, linear/step kinds, scale,
            # mirror) is topology, identical across members; only the
            # charge-model parameters vary with the device sample.
            for plan in plans[1:]:
                other = plan.system._caps
                if not (
                    np.array_equal(other.a, bank.a)
                    and np.array_equal(other.b, bank.b)
                    and np.array_equal(other.kind, bank.kind)
                    and np.array_equal(other.scale, bank.scale)
                    and np.array_equal(other.mirror, bank.mirror)
                ):
                    raise ValueError("batch members must share one topology")
            self.cap_a = bank.a
            self.cap_b = bank.b
            self.cap_scale = bank.scale
            self.cap_mirror = bank.mirror
            self.cap_step = bank.kind == 1
            self.cap_all_linear = all(p.system._caps._all_linear for p in plans)
            self.cap_other = any(p.system._caps.other for p in plans)
            self.C_SCLIN = np.vstack([p.system._caps._scaled_lin for p in plans])
            self.C_LIN = np.vstack([p.system._caps.c_lin for p in plans])
            self.C_LOW = np.vstack([p.system._caps.c_low for p in plans])
            self.C_HIGH = np.vstack([p.system._caps.c_high for p in plans])
            self.C_VSTEP = np.vstack([p.system._caps.v_step for p in plans])
            self.C_WIDTH = np.vstack([p.system._caps.width for p in plans])
            self.cf_idx = first._cf_idx
            self.cf_sign = first._cf_sign
            self.cf_member = first._cf_member
            self.cj_flat = first._cj_flat
            self.cj_sign = first._cj_sign
            self.cj_member = first._cj_member


def _stamp_devices_batch(layout: _Layout, registry: _TableRegistry, tel) -> None:
    """Evaluate + scatter every member's transistors for this tick."""
    n = layout.n
    X = layout.X
    fresh = [
        i
        for i in range(len(layout.plans))
        if not (layout.T_VALID[i] and np.array_equal(X[i, :n], layout.T_X[i]))
    ]
    if fresh:
        fr = np.array(fresh, dtype=np.intp)
        base = fr * (n + 1)
        xgr = layout.XG.reshape(-1)
        VS = xgr[base[:, None] + layout.S[fr]]
        VG = xgr[base[:, None] + layout.G[fr]]
        VD = xgr[base[:, None] + layout.D[fr]]
        SGN = layout.SIGN[fr]
        W = layout.WIDTH[fr]
        VGS = SGN * (VG - VS)
        VDS = SGN * (VD - VS)
        TBL = layout.TBL[fr]
        J = np.empty_like(VGS)
        GMv = np.empty_like(VGS)
        GDSv = np.empty_like(VGS)
        tb = TBL >= 0
        if tb.any():
            cur, dg, dd = registry.evaluate(TBL[tb], VGS[tb], VDS[tb])
            J[tb] = cur
            GMv[tb] = dg
            GDSv[tb] = dd
            if tel is not None:
                tel.count("batch.table_points", int(cur.size))
        for local, i in enumerate(fresh):
            plan = layout.plans[i]
            if not plan.t_fallback:
                continue
            xg = layout.XG[i]
            for model, sl, sign, width, d, g, s in plan.t_fallback:
                vs = xg[s]
                vgs = sign * (xg[g] - vs)
                vds = sign * (xg[d] - vs)
                j, gm, gds = model.evaluate_density(vgs, vds)
                J[local, sl] = np.asarray(j, dtype=float)
                GMv[local, sl] = np.asarray(gm, dtype=float)
                GDSv[local, sl] = np.asarray(gds, dtype=float)
        layout.ID[fr] = SGN * W * J
        layout.GM[fr] = W * GMv
        layout.GDS[fr] = W * GDSv
        layout.T_X[fr] = X[fr, :n]
        layout.T_VALID[fr] = True

    np.add.at(layout.Fr, layout.tf_idx, layout.tf_sign * layout.ID.reshape(-1)[layout.tf_mem])
    layout.COEF[0] = layout.GDS
    layout.COEF[1] = layout.GM
    np.add(layout.GM, layout.GDS, out=layout.COEF[2])
    np.add.at(
        layout.JACr,
        layout.tj_flat,
        layout.tj_sign * layout.COEF2[layout.tj_kind, layout.tj_mem],
    )


def _stamp_capacitors_batch(layout: _Layout, reqs: list, tr: list[int]) -> None:
    """Companion-model capacitor stamps for members in transient."""
    trows = np.array(tr, dtype=np.intp)
    size = layout.size
    XGt = layout.XG[trows]
    V = XGt[:, layout.cap_a] - XGt[:, layout.cap_b]
    if layout.cap_all_linear:
        Q = layout.C_SCLIN[trows] * V
        C = np.broadcast_to(layout.C_SCLIN[trows], V.shape)
    else:
        VM = layout.cap_mirror * V
        Xc = np.clip((VM - layout.C_VSTEP[trows]) / layout.C_WIDTH[trows], -200.0, 200.0)
        softplus = layout.C_WIDTH[trows] * np.logaddexp(0.0, Xc)
        sigmoid = 1.0 / (1.0 + np.exp(-Xc))
        c_low = layout.C_LOW[trows]
        c_high = layout.C_HIGH[trows]
        q_step = layout.cap_mirror * (c_low * VM + (c_high - c_low) * softplus)
        c_step = c_low + (c_high - c_low) * sigmoid
        Q = np.where(layout.cap_step, q_step, layout.C_LIN[trows] * V)
        C = np.where(layout.cap_step, c_step, layout.C_LIN[trows])
        Q = layout.cap_scale * Q
        C = layout.cap_scale * C

    n_c = layout.n_c
    QP = np.empty((len(tr), n_c))
    H = np.empty(len(tr))
    trapezoidal = False
    for j, i in enumerate(tr):
        state = reqs[i][3]
        QP[j] = state.capacitor_charges
        H[j] = state.timestep
        if state.method == "trapezoidal":
            trapezoidal = True
    if not trapezoidal:
        CUR = (Q - QP) / H[:, None]
        CON = C / H[:, None]
    else:
        CUR = np.empty_like(Q)
        CON = np.empty_like(Q)
        for j, i in enumerate(tr):
            state = reqs[i][3]
            if state.method == "trapezoidal":
                CUR[j] = 2.0 * (Q[j] - QP[j]) / H[j] - state.capacitor_currents
                CON[j] = 2.0 * C[j] / H[j]
            else:
                CUR[j] = (Q[j] - QP[j]) / H[j]
                CON[j] = C[j] / H[j]

    f_idx = (trows * size)[:, None] + layout.cf_idx
    np.add.at(layout.Fr, f_idx.reshape(-1), (layout.cf_sign * CUR[:, layout.cf_member]).reshape(-1))
    j_idx = (trows * size * size)[:, None] + layout.cj_flat
    np.add.at(layout.JACr, j_idx.reshape(-1), (layout.cj_sign * CON[:, layout.cj_member]).reshape(-1))


def _assemble_tick(layout: _Layout, reqs: list, registry: _TableRegistry, tel) -> None:
    """One batched assembly over the active set.

    ``reqs[i]`` is member i's request tuple.  Stamp order per member
    matches :meth:`MnaSystem._assemble` exactly: linear, gmin, clamps,
    voltage sources, current sources, transistors, capacitors.
    """
    n = layout.n
    K = len(reqs)
    X = layout.X
    F = layout.F
    for i, r in enumerate(reqs):
        X[i] = r[0]
    layout.XG[:, :n] = X[:, :n]

    # Linear elements: one per-member mat-vec (a fused (K,n)x(n,n) dgemm
    # is NOT bit-identical to the scalar matmul — measured, not guessed).
    for i in range(K):
        np.matmul(layout.LIN[i], X[i], out=F[i])
    np.copyto(layout.JAC, layout.LIN)

    gv = np.array([r[2] for r in reqs])
    idx = np.flatnonzero(gv > 0.0)
    if idx.size:
        F[idx, :n] += gv[idx, None] * X[idx, :n]
        layout.JAC2[np.ix_(idx, layout.diag_flat)] += gv[idx, None]

    for i, r in enumerate(reqs):
        clamps = r[4]
        if clamps:
            sys = layout.plans[i].system
            nodes, conductance, target = sys._clamp_arrays(clamps)
            if nodes.size:
                np.add.at(F[i], nodes, conductance * (r[0][nodes] - target))
                np.add.at(
                    layout.JAC2[i], nodes * (layout.size + 1), conductance
                )

    # Independent sources: per-member, reusing each system's (t,
    # waveform) caches so the cache evolution matches the scalar path.
    for i, r in enumerate(reqs):
        sys = layout.plans[i].system
        t = r[1]
        source_scale = r[5]
        if sys.n_branches:
            vs = sys._vs_values
            sources = sys.circuit.voltage_sources
            waves = sys._vs_waves
            if t != sys._vs_t or any(
                s.waveform is not w for s, w in zip(sources, waves)
            ):
                for m, src in enumerate(sources):
                    vs[m] = src.waveform.value(t)
                    waves[m] = src.waveform
                sys._vs_t = t
            F[i, n:] -= source_scale * vs
        if sys._is_idx.size:
            iv = sys._is_values
            sources = sys.circuit.current_sources
            waves = sys._is_waves
            if t != sys._is_t or any(
                s.waveform is not w for s, w in zip(sources, waves)
            ):
                for m, src in enumerate(sources):
                    iv[m] = src.waveform.value(t)
                    waves[m] = src.waveform
                sys._is_t = t
            np.add.at(
                F[i], sys._is_idx, sys._is_sign * (source_scale * iv[sys._is_member])
            )

    if layout.n_t:
        _stamp_devices_batch(layout, registry, tel)

    if layout.n_c:
        tr = [i for i, r in enumerate(reqs) if r[3] is not None]
        if tr:
            if layout.cap_other:
                # Exotic charge functions: the vectorized bank falls
                # back per member, exactly like the scalar assembler.
                for i in tr:
                    sys = layout.plans[i].system
                    sys._stamp_capacitors(
                        X[i], F[i], layout.JAC2[i], reqs[i][3], True
                    )
            else:
                _stamp_capacitors_batch(layout, reqs, tr)


def _plan_for(member: BatchMember, registry: _TableRegistry) -> _MemberPlan:
    plan = member._plan
    system = member.system
    if (
        plan is None
        or plan.system is not system
        or plan.lin is not system._lin  # invalidate_caches() recompiled
        or plan.vs_waves is not system._vs_waves
    ):
        plan = _MemberPlan(system, registry)
        member._plan = plan
    return plan


def run_generators(
    pairs: list[tuple[BatchMember, object]]
) -> list[MemberOutcome]:
    """Drive (member, generator) pairs to completion, batching assembly.

    Each generator yields assembly requests and receives ``(f, jac)``
    answers; the driver advances every live member once per tick and
    serves all parked requests with one stacked assembly.  A generator's
    return value becomes its member's ``value``; an uncaught exception
    (most commonly :class:`ConvergenceError`) becomes an ``"error"``
    outcome without disturbing the other members.  Outcomes are
    returned in input order.
    """
    tel = telemetry.active()
    registry = _TableRegistry()
    results: list[MemberOutcome | None] = [None] * len(pairs)
    active: list[list] = []
    for pos, (member, gen) in enumerate(pairs):
        try:
            req = gen.send(None)
        except StopIteration as stop:
            results[pos] = MemberOutcome(member, "ok", stop.value)
        except Exception as exc:
            results[pos] = MemberOutcome(member, "error", error=exc)
        else:
            active.append([pos, member, gen, req])
    if tel is not None:
        tel.count("batch.runs")
        tel.count("batch.members", len(pairs))

    layout = None
    layout_key = None
    while active:
        plans = [_plan_for(entry[1], registry) for entry in active]
        key = tuple(id(p) for p in plans)
        if key != layout_key:
            layout = _Layout(plans)
            layout_key = key
        reqs = [entry[3] for entry in active]
        _assemble_tick(layout, reqs, registry, tel)
        if tel is not None:
            tel.count("batch.ticks")
            tel.count("batch.member_assemblies", len(active))

        still = []
        for i, entry in enumerate(active):
            pos, member, gen, req = entry
            answer = (layout.F[i].copy(), layout.JAC[i] if req[6] else None)
            try:
                nxt = gen.send(answer)
            except StopIteration as stop:
                results[pos] = MemberOutcome(member, "ok", stop.value)
            except Exception as exc:
                results[pos] = MemberOutcome(member, "error", error=exc)
            else:
                entry[3] = nxt
                still.append(entry)
        active = still
    return results


# -- generator transcriptions of the scalar control flow ----------------------
#
# Each generator below is a line-for-line transcription of its scalar
# counterpart (newton_solve, _attempt_step, simulate_transient/_simulate,
# solve_dc/_solve_dc_tiers) with every MnaSystem assembly replaced by a
# yield.  Control flow, damping constants, cache seeding, telemetry
# counters, and exception behaviour are preserved so a batch member's
# iteration history is identical to a scalar run of the same problem.


def newton_gen(
    member: BatchMember,
    x0: np.ndarray,
    t: float,
    options: SolverOptions,
    transient: TransientState | None = None,
    clamps: tuple[VoltageClamp, ...] = (),
    extra_gmin: float = 0.0,
    source_scale: float = 1.0,
):
    """Generator transcription of :func:`repro.circuit.dcop.newton_solve`."""
    if options.max_iterations < 1:
        raise ValueError(
            f"SolverOptions.max_iterations must be >= 1, got {options.max_iterations}"
        )
    tel = telemetry.active()
    wall_start = time.perf_counter() if tel is not None else 0.0
    system = member.system

    x = x0.copy()
    n = system.n_nodes
    gmin = options.gmin + extra_gmin

    f, _ = yield (x, t, gmin, transient, clamps, source_scale, False)
    factor = None
    age = 0
    stamps = 0
    reuses = 0
    residual_ok_streak = 0
    trust = options.step_limit
    backtracks = 0
    trust_shrinks = 0
    step = float("nan")
    iteration = 0
    while iteration < options.max_iterations:
        iteration += 1

        refresh = (
            factor is None
            or not options.jacobian_reuse
            or age >= options.max_jacobian_age
        )
        if refresh:
            _, jac = yield (x, t, gmin, transient, clamps, source_scale, True)
            try:
                factor = _factorize(jac)
            except np.linalg.LinAlgError as exc:
                if tel is not None:
                    tel.count("newton.singular_jacobians")
                    _record_newton(tel, wall_start, iteration, backtracks,
                                   trust_shrinks, stamps, reuses, converged=False)
                raise ConvergenceError(
                    f"singular Jacobian at iteration {iteration}",
                    forensics={"worst_residual_nodes": _worst_residual_nodes(system, f)},
                ) from exc
            age = 0
            stamps += 1
        else:
            age += 1
            reuses += 1

        try:
            delta = factor.solve(-f)
        except np.linalg.LinAlgError as exc:
            if tel is not None:
                tel.count("newton.singular_jacobians")
                _record_newton(tel, wall_start, iteration, backtracks,
                               trust_shrinks, stamps, reuses, converged=False)
            raise ConvergenceError(
                f"singular Jacobian at iteration {iteration}",
                forensics={"worst_residual_nodes": _worst_residual_nodes(system, f)},
            ) from exc
        if not np.all(np.isfinite(delta)):
            if age > 0:
                factor = None
                iteration -= 1
                continue
            if tel is not None:
                _record_newton(tel, wall_start, iteration, backtracks,
                               trust_shrinks, stamps, reuses, converged=False)
            raise ConvergenceError(
                f"non-finite Newton step at iteration {iteration}",
                forensics={"worst_residual_nodes": _worst_residual_nodes(system, f)},
            )

        max_dv = float(np.max(np.abs(delta[:n]))) if n else 0.0
        if max_dv > trust:
            delta = delta * (trust / max_dv)
            max_dv = trust

        norm_old = float(np.linalg.norm(f))
        scale = 1.0
        descended = False
        for _ in range(options.line_search_backtracks + 1):
            x_try = x + scale * delta
            f_try, _ = yield (x_try, t, gmin, transient, clamps, source_scale, False)
            if float(np.linalg.norm(f_try)) <= norm_old or norm_old == 0.0:
                descended = True
                break
            scale *= 0.5
            backtracks += 1
        if not descended and age > 0:
            factor = None
            iteration -= 1
            continue
        x, f = x_try, f_try
        step = scale * max_dv

        if scale < 1.0:
            trust = max(0.25 * trust, 1e-7)
            trust_shrinks += 1
            factor = None
        else:
            trust = min(2.0 * trust, options.step_limit)
            norm_new = float(np.linalg.norm(f))
            if age > 0 and norm_new > options.reuse_descent_factor * norm_old:
                factor = None

        max_f = float(np.max(np.abs(f)))
        if max_f < options.residual_tolerance:
            if age == 0:
                residual_ok_streak += 1
                if step < options.voltage_tolerance or residual_ok_streak >= 3:
                    ver = verify.active()
                    if ver is not None:
                        verify_audits.audit_newton_solution(
                            ver, system, x, t, gmin=gmin,
                            transient=transient, clamps=clamps,
                            source_scale=source_scale,
                            residual_tolerance=options.residual_tolerance,
                        )
                    if tel is not None:
                        _record_newton(tel, wall_start, iteration, backtracks,
                                       trust_shrinks, stamps, reuses,
                                       converged=True)
                    return x, iteration
            else:
                factor = None
        else:
            residual_ok_streak = 0

    if tel is not None:
        _record_newton(tel, wall_start, options.max_iterations, backtracks,
                       trust_shrinks, stamps, reuses, converged=False)
    raise ConvergenceError(
        f"Newton did not converge in {options.max_iterations} iterations",
        forensics={
            "last_dv": step,
            "max_residual": float(np.max(np.abs(f))),
            "worst_residual_nodes": _worst_residual_nodes(system, f),
            "extra_gmin": extra_gmin,
            "source_scale": source_scale,
        },
    )


def attempt_step_gen(
    member: BatchMember,
    x: np.ndarray,
    x_prev: np.ndarray | None,
    h_prev: float,
    t: float,
    h_try: float,
    charges: np.ndarray,
    currents: np.ndarray,
    options: TransientOptions,
    tel,
):
    """Generator transcription of :func:`repro.circuit.transient._attempt_step`."""
    extrapolate = (
        options.predictor == "linear" and x_prev is not None and h_prev > 0.0
    )
    while True:
        state = TransientState(
            timestep=h_try,
            capacitor_charges=charges,
            capacitor_currents=currents,
            method=options.method,
        )
        reason = "newton"
        dv = float("nan")
        seeds = [x + (x - x_prev) * (h_try / h_prev)] if extrapolate else []
        seeds.append(x)
        try:
            for attempt, x_seed in enumerate(seeds):
                try:
                    x_new, iterations = yield from newton_gen(
                        member, x_seed, t + h_try, options.solver, transient=state
                    )
                    break
                except ConvergenceError:
                    if attempt == len(seeds) - 1:
                        raise
                    if tel is not None:
                        tel.count("transient.predictor_fallbacks")
            system = member.system
            dv = float(np.max(np.abs(x_new[: system.n_nodes] - x[: system.n_nodes])))
            if dv <= options.max_voltage_step or h_try <= options.min_step:
                return x_new, iterations, state, h_try
            reason = "dv_limit"
        except ConvergenceError:
            pass

        if tel is not None:
            tel.count("transient.steps_rejected")
            tel.count(f"transient.rejected_{reason}")
        h_try *= options.shrink
        if h_try < options.min_step:
            if tel is not None:
                tel.count("transient.step_underflows")
            raise ConvergenceError(
                f"transient step underflow at t = {t:.3e} s",
                forensics={
                    "time_s": t,
                    "step_s": h_try,
                    "last_rejection": reason,
                    "last_dv": dv,
                },
            ) from None


def solve_dc_gen(
    member: BatchMember,
    circuit,
    initial_guess: dict[str, float] | None = None,
    clamp_nodes: dict[str, float] | None = None,
    options: SolverOptions | None = None,
    t: float = 0.0,
    system: MnaSystem | None = None,
    x0=None,
):
    """Generator transcription of :func:`repro.circuit.dcop.solve_dc`."""
    options = options or SolverOptions()
    if system is None:
        system = make_system(
            circuit,
            matrix_format=options.matrix_format,
            sparse_threshold=options.sparse_threshold,
            dense_cls=MnaSystem,
        )
    member.install_system(system)
    clamps = tuple(
        VoltageClamp(circuit.index_of(name), target)
        for name, target in (clamp_nodes or {}).items()
        if circuit.index_of(name) >= 0
    )
    if x0 is None:
        x0 = _initial_vector(system, initial_guess)
    else:
        x0 = _seed_vector(system, x0)

    tel = telemetry.active()
    if tel is not None:
        tel.count("dcop.solves")

    warm = bool(np.any(x0 != 0.0))
    first_tier = "warm_start" if warm else "cold_start"
    try:
        x, _ = yield from newton_gen(member, x0, t, options, clamps=clamps)
        _tier_converged(tel, first_tier, t)
        return OperatingPoint(circuit, x, options.gmin)
    except ConvergenceError:
        pass

    if warm:
        try:
            x, _ = yield from newton_gen(
                member, np.zeros(system.size), t, options, clamps=clamps
            )
            _tier_converged(tel, "cold_start", t)
            return OperatingPoint(circuit, x, options.gmin)
        except ConvergenceError:
            pass

    x = x0.copy()
    try:
        for extra in np.geomspace(1e-2, 1e-12, 11):
            x, _ = yield from newton_gen(
                member, x, t, options, clamps=clamps, extra_gmin=extra
            )
        x, _ = yield from newton_gen(member, x, t, options, clamps=clamps)
        _tier_converged(tel, "gmin_stepping", t)
        return OperatingPoint(circuit, x, options.gmin)
    except ConvergenceError:
        pass

    x = np.zeros(system.size)
    try:
        for scale in np.linspace(0.1, 1.0, 10):
            x, _ = yield from newton_gen(
                member, x, t, options, clamps=clamps, source_scale=scale
            )
    except ConvergenceError as exc:
        if tel is not None:
            tel.count("dcop.failures")
            tel.event("dcop.failure", level="error", sim_time=t, **{
                k: v for k, v in exc.forensics.items() if k != "worst_residual_nodes"
            })
        raise ConvergenceError(
            "DC operating point failed after every fallback tier",
            forensics={"fallback_tier": "source_stepping", **exc.forensics},
        ) from exc
    _tier_converged(tel, "source_stepping", t)
    return OperatingPoint(circuit, x, options.gmin)


def transient_gen(
    member: BatchMember,
    circuit,
    t_stop: float,
    initial_conditions: dict[str, float] | None = None,
    options: TransientOptions | None = None,
    operating_point_guess: dict[str, float] | None = None,
):
    """Generator transcription of :func:`repro.circuit.transient.simulate_transient`."""
    if t_stop <= 0.0:
        raise ValueError("t_stop must be positive")
    options = options or TransientOptions()
    tel = telemetry.active()

    guess = dict(operating_point_guess or {})
    guess.update(initial_conditions or {})
    system = make_system(
        circuit,
        matrix_format=options.solver.matrix_format,
        sparse_threshold=options.solver.sparse_threshold,
        dense_cls=MnaSystem,
    )
    member.install_system(system)
    op = yield from solve_dc_gen(
        member,
        circuit,
        initial_guess=guess or None,
        clamp_nodes=initial_conditions,
        options=options.solver,
        system=system,
    )
    x = op.x.copy()
    # Charge/current queries run on the member's own scalar assembler:
    # the batched stamps are bit-identical to it, so mixing the two is
    # exact, and the per-step cost is a handful of vector ops.
    charges = system.capacitor_charges(x)
    currents = np.zeros_like(charges)

    breakpoints = [b for b in circuit.breakpoints() if 0.0 < b < t_stop]
    breakpoints.append(t_stop)

    times = [0.0]
    states = [x.copy()]

    t = 0.0
    h = options.initial_step
    x_prev: np.ndarray | None = None
    h_prev = 0.0
    while t < t_stop - 1e-21:
        k = bisect.bisect_right(breakpoints, t)
        next_break = breakpoints[k] if k < len(breakpoints) else t_stop
        h_cap = min(h, options.max_step, next_break - t)

        x_new, iterations, state, h_try = yield from attempt_step_gen(
            member, x, x_prev, h_prev, t, h_cap, charges, currents, options, tel
        )

        t += h_try
        if t != next_break and abs(next_break - t) <= 64.0 * _EPS * next_break:
            t = next_break
        x_prev, h_prev = x, h_try
        x = x_new
        currents = system.capacitor_currents(x, state)
        charges = system.capacitor_charges(x)
        times.append(t)
        states.append(x.copy())

        ver = verify.active()
        if ver is not None:
            verify_audits.audit_transient_step(
                ver, system, x_prev, x, state, charges, currents
            )

        if tel is not None:
            tel.count("transient.steps_accepted")
            tel.observe("transient.step_seconds", h_try)
            if t >= next_break - 1e-21:
                tel.count("transient.breakpoint_landings")

        if h_try < h_cap:
            h = h_try
        elif iterations <= options.easy_iterations:
            h = min(max(h, h_try) * options.growth, options.max_step)

    if tel is not None:
        tel.count("transient.simulations")
        tel.event(
            "transient.complete",
            level="debug",
            t_stop=t_stop,
            points=len(times),
        )
    return TransientResult(circuit, np.array(times), np.array(states))
