"""DC sweeps: solve a family of operating points along a source ramp.

Used for static transfer curves (inverter VTC, butterfly/SNM plots) —
each point warm-starts from the previous one, which keeps the bistable
branches continuous instead of hopping between them.

The sweep builds one :class:`MnaSystem` up front and reuses it for
every point (the precompiled stamps survive the waveform swap), and
each point's Newton iteration is seeded with the *full* previous
solution vector — node voltages and branch currents — so a smooth
sweep segment typically converges in a couple of iterations without
touching the homotopy fallbacks.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.dcop import SolverOptions, solve_dc
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.results import OperatingPoint
from repro.circuit.sparse import make_system
from repro.circuit.waveforms import Constant

__all__ = ["dc_sweep"]


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: np.ndarray,
    initial_guess: dict[str, float] | None = None,
    options: SolverOptions | None = None,
) -> list[OperatingPoint]:
    """Sweep a voltage source through ``values``.

    The named source's waveform is replaced by each constant level in
    turn (the circuit is restored afterwards).  Returns one operating
    point per value, each seeded by the previous solution.
    """
    m = circuit.source_index(source_name)
    original = circuit.voltage_sources[m]
    solver = options or SolverOptions()
    system = make_system(
        circuit,
        matrix_format=solver.matrix_format,
        sparse_threshold=solver.sparse_threshold,
        dense_cls=MnaSystem,
    )
    results: list[OperatingPoint] = []
    guess = initial_guess
    warm: OperatingPoint | None = None
    try:
        for value in np.asarray(values, dtype=float):
            circuit.voltage_sources[m] = type(original)(
                original.a, original.b, Constant(float(value)), original.name
            )
            op = solve_dc(
                circuit,
                initial_guess=guess,
                options=options,
                system=system,
                x0=warm,  # the full OperatingPoint: fingerprint-validated
            )
            results.append(op)
            warm = op
    finally:
        circuit.voltage_sources[m] = original
    return results
