"""DC sweeps: solve a family of operating points along a source ramp.

Used for static transfer curves (inverter VTC, butterfly/SNM plots) —
each point warm-starts from the previous one, which keeps the bistable
branches continuous instead of hopping between them.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.dcop import SolverOptions, solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.results import OperatingPoint
from repro.circuit.waveforms import Constant

__all__ = ["dc_sweep"]


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: np.ndarray,
    initial_guess: dict[str, float] | None = None,
    options: SolverOptions | None = None,
) -> list[OperatingPoint]:
    """Sweep a voltage source through ``values``.

    The named source's waveform is replaced by each constant level in
    turn (the circuit is restored afterwards).  Returns one operating
    point per value, each seeded by the previous solution.
    """
    m = circuit.source_index(source_name)
    original = circuit.voltage_sources[m]
    results: list[OperatingPoint] = []
    guess = initial_guess
    try:
        for value in np.asarray(values, dtype=float):
            circuit.voltage_sources[m] = type(original)(
                original.a, original.b, Constant(float(value)), original.name
            )
            op = solve_dc(circuit, initial_guess=guess, options=options)
            results.append(op)
            guess = {name: op.voltage(name) for name in circuit.node_names}
    finally:
        circuit.voltage_sources[m] = original
    return results
