"""Sparse MNA assembly: fixed-pattern CSC stamping with splu.

Dense assembly (:class:`repro.circuit.mna.MnaSystem`) copies an
``size x size`` Jacobian per stamp and hands it to dense LAPACK — an
O(n^2) copy and an O(n^3) factorization that are invisible at SRAM-cell
sizes (~10 unknowns) but dominate array-scale netlists (bitline RC
ladders, decoder chains: hundreds to thousands of unknowns at ~5
nonzeros per row).

:class:`SparseMnaSystem` reuses every compiled index/sign array of the
dense assembler and changes only where stamps land:

* the sparsity *pattern* is computed once at compile time — the union
  of the linear-stamp nonzeros, the gmin/clamp diagonal, and the
  transistor/capacitor scatter targets — and every flat dense index
  (``row * size + col``) is pre-mapped to its position in the CSC data
  vector, so per-call stamping is the same handful of ``np.add.at``
  scatters, now into a length-nnz vector instead of ``size**2``;
* the residual's linear mat-vec runs on a CSR copy of the constant
  linear stamp (O(nnz) instead of O(n^2));
* ``assemble`` returns a ``scipy.sparse`` CSC matrix sharing the fixed
  pattern, which :class:`repro.circuit.dcop._Factorization` routes to
  ``splu``.

scipy's ``splu`` exposes no values-only refactorization hook, so what
is reused across Newton iterations is the *assembly-level* symbolic
work (pattern, index maps, buffers) plus the modified-Newton LU reuse
in the solver; each re-stamp pays one full ``splu``.  ``permc_spec``
is pinned to ``"COLAMD"`` so the fill-reducing ordering — a pure
function of the fixed pattern — is deterministic across calls.

:func:`make_system` is the selection point: ``"auto"`` picks sparse
when the system size reaches ``sparse_threshold`` (and scipy is
available), so small decks keep the dense fast path that beats sparse
overhead below ~tens of unknowns.  Selection is recorded on the
telemetry counters ``mna.sparse_selected`` / ``mna.dense_selected``
(surfaced by ``repro diag``).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.netlist import Circuit
from repro.telemetry import core as telemetry

try:  # pragma: no cover - exercised via either branch in CI images
    from scipy import sparse as _sparse
    from scipy.sparse.linalg import splu as _splu

    HAVE_SPARSE = True
except ImportError:  # pragma: no cover
    _sparse = None
    _splu = None
    HAVE_SPARSE = False

__all__ = [
    "HAVE_SPARSE",
    "DEFAULT_SPARSE_THRESHOLD",
    "SparseMnaSystem",
    "SparseFactorization",
    "make_system",
]

DEFAULT_SPARSE_THRESHOLD = 64
"""``"auto"`` switches to CSC assembly at this system size (unknowns)."""

MATRIX_FORMATS = ("auto", "dense", "sparse")


class SparseFactorization:
    """splu of one stamped CSC Jacobian, matching ``_Factorization``'s
    contract: construction raises ``np.linalg.LinAlgError`` on a
    singular or non-finite matrix, ``solve`` back-substitutes."""

    __slots__ = ("_lu",)

    def __init__(self, jac):
        if not np.all(np.isfinite(jac.data)):
            raise np.linalg.LinAlgError("non-finite sparse Jacobian")
        try:
            # COLAMD ordering is a pure function of the (fixed) pattern,
            # keeping factorization deterministic across re-stamps.
            self._lu = _splu(jac, permc_spec="COLAMD")
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise np.linalg.LinAlgError(str(exc)) from exc

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(rhs)


class SparseMnaSystem(MnaSystem):
    """MNA assembler producing fixed-pattern CSC Jacobians.

    Construction requires scipy; :func:`make_system` guards the
    selection.  The public surface is identical to
    :class:`MnaSystem` except that the Jacobian returned by
    ``assemble`` is a ``scipy.sparse.csc_matrix`` (``copy`` requests a
    matrix with private data; the no-copy fast path shares the
    assembler's data buffer, overwritten by the next assembly).
    """

    def __init__(self, circuit: Circuit):
        if not HAVE_SPARSE:  # pragma: no cover - guarded by make_system
            raise RuntimeError("SparseMnaSystem requires scipy.sparse")
        super().__init__(circuit)

    def _compile(self) -> None:
        super()._compile()
        size = self.size
        n = self.n_nodes

        # Pattern union: linear stamp + node diagonal (gmin and clamps
        # land there) + transistor and capacitor scatter targets.  The
        # diagonal of the *whole* system is included so splu never sees
        # a structurally empty pivot column.
        lin_flat = np.flatnonzero(self._lin)
        parts = [
            lin_flat,
            np.arange(size, dtype=np.intp) * (size + 1),
            self._tj_flat,
            self._cj_flat,
        ]
        pattern = np.unique(np.concatenate(parts)).astype(np.intp)
        rows = pattern // size
        cols = pattern % size

        # CSC layout: entries sorted by (col, row).  ``pattern`` is
        # sorted by flat index = row-major, so re-sort; the map from a
        # flat dense index to its CSC data slot is then one
        # ``searchsorted`` at compile time per stamp array.
        order = np.lexsort((rows, cols))
        self._csc_indices = rows[order].astype(np.int32)
        self._csc_indptr = np.zeros(size + 1, dtype=np.int32)
        np.add.at(self._csc_indptr, cols + 1, 1)
        np.cumsum(self._csc_indptr, out=self._csc_indptr)
        slot_of_pattern = np.empty(len(pattern), dtype=np.intp)
        slot_of_pattern[order] = np.arange(len(pattern), dtype=np.intp)
        self._pattern = pattern
        self._pattern_slots = slot_of_pattern

        def slots(flat_idx: np.ndarray) -> np.ndarray:
            return slot_of_pattern[np.searchsorted(pattern, flat_idx)]

        self._nnz = len(pattern)
        self._data = np.zeros(self._nnz)
        base = np.zeros(self._nnz)
        base[slots(lin_flat)] = self._lin.reshape(-1)[lin_flat]
        self._data_base = base
        self._diag_slots = slots(np.arange(n, dtype=np.intp) * (size + 1))
        self._tj_slots = slots(self._tj_flat)
        self._cj_slots = slots(self._cj_flat)
        self._lin_csr = _sparse.csr_matrix(self._lin)
        self._clamp_slot_cache: tuple | None = None
        # The dense Jacobian scratch is never stamped on this class;
        # release the O(size^2) buffers the base compile allocated.
        self._jac = np.empty((0, 0))
        self._jac_flat = self._jac.reshape(-1)

    def _flat_slots(self, flat_idx: np.ndarray) -> np.ndarray:
        """Map flat dense indices (row*size+col) to CSC data positions."""
        return self._pattern_slots[np.searchsorted(self._pattern, flat_idx)]

    def _clamp_slots(self, clamps: tuple[VoltageClamp, ...]):
        cached = self._clamp_slot_cache
        if cached is not None and cached[0] == clamps:
            return cached[1]
        nodes, _, _ = self._clamp_arrays(clamps)
        # Every node diagonal is in the pattern by construction.
        slots = self._flat_slots(nodes * (self.size + 1))
        self._clamp_slot_cache = (clamps, slots)
        return slots

    def _assemble(
        self,
        x: np.ndarray,
        t: float,
        gmin: float,
        transient: TransientState | None,
        clamps: tuple[VoltageClamp, ...],
        source_scale: float,
        want_jac: bool,
    ):
        if self._topology != self._topology_key():
            self._compile()

        n = self.n_nodes
        f = self._f
        data = self._data

        np.copyto(f, self._lin_csr.dot(x))
        if want_jac:
            np.copyto(data, self._data_base)

        if gmin > 0.0:
            f[:n] += gmin * x[:n]
            if want_jac:
                data[self._diag_slots] += gmin

        if clamps:
            nodes, conductance, target = self._clamp_arrays(clamps)
            if nodes.size:
                np.add.at(f, nodes, conductance * (x[nodes] - target))
                if want_jac:
                    np.add.at(data, self._clamp_slots(clamps), conductance)

        if self.n_branches:
            vs = self._vs_values
            sources = self.circuit.voltage_sources
            waves = self._vs_waves
            if t != self._vs_t or any(
                s.waveform is not w for s, w in zip(sources, waves)
            ):
                for m, src in enumerate(sources):
                    vs[m] = src.waveform.value(t)
                    waves[m] = src.waveform
                self._vs_t = t
            f[n:] -= source_scale * vs
        if self._is_idx.size:
            iv = self._is_values
            sources = self.circuit.current_sources
            waves = self._is_waves
            if t != self._is_t or any(
                s.waveform is not w for s, w in zip(sources, waves)
            ):
                for m, src in enumerate(sources):
                    iv[m] = src.waveform.value(t)
                    waves[m] = src.waveform
                self._is_t = t
            np.add.at(
                f, self._is_idx, self._is_sign * (source_scale * iv[self._is_member])
            )

        if self._t_count:
            self._stamp_transistors_sparse(x, f, data, want_jac)
        if transient is not None and len(self._caps):
            self._stamp_capacitors_sparse(x, f, data, transient, want_jac)

        if not want_jac:
            return f.copy(), None
        jac = _sparse.csc_matrix(
            (data, self._csc_indices, self._csc_indptr),
            shape=(self.size, self.size),
            copy=False,
        )
        return f.copy(), jac

    def assemble(self, x, t, gmin=0.0, transient=None, clamps=(),
                 source_scale=1.0, copy=True):
        f, jac = self._assemble(x, t, gmin, transient, clamps, source_scale, True)
        return (f, jac.copy()) if copy else (f, jac)

    def _stamp_transistors_sparse(self, x, f, data, want_jac: bool) -> None:
        i_d, gm_w, gds_w = self._t_id, self._t_gm, self._t_gds
        volts = x[: self.n_nodes]
        if not (self._t_valid and np.array_equal(volts, self._t_x)):
            xg = self._xg
            xg[: self.n_nodes] = volts
            for model, sl, sign, width, d, g, s in self._t_groups:
                vs = xg[s]
                vgs = sign * (xg[g] - vs)
                vds = sign * (xg[d] - vs)
                j, gm, gds = model.evaluate_density(vgs, vds)
                i_d[sl] = sign * width * np.asarray(j)
                gm_w[sl] = width * np.asarray(gm)
                gds_w[sl] = width * np.asarray(gds)
            self._t_x[:] = volts
            self._t_valid = True
        np.add.at(f, self._tf_idx, self._tf_sign * i_d[self._tf_member])
        if want_jac:
            coef = self._t_coef
            coef[0] = gds_w
            coef[1] = gm_w
            np.add(gm_w, gds_w, out=coef[2])
            np.add.at(
                data,
                self._tj_slots,
                self._tj_sign * coef[self._tj_kind, self._tj_member],
            )

    def _stamp_capacitors_sparse(
        self, x, f, data, transient: TransientState, want_jac: bool
    ) -> None:
        h = transient.timestep
        q, c = self._cap_qc(x)
        if transient.method == "trapezoidal":
            current = (
                2.0 * (q - transient.capacitor_charges) / h
                - transient.capacitor_currents
            )
            conductance = 2.0 * c / h
        else:
            current = (q - transient.capacitor_charges) / h
            conductance = c / h
        np.add.at(f, self._cf_idx, self._cf_sign * current[self._cf_member])
        if want_jac:
            np.add.at(
                data, self._cj_slots, self._cj_sign * conductance[self._cj_member]
            )


def make_system(
    circuit: Circuit,
    matrix_format: str = "auto",
    sparse_threshold: int = DEFAULT_SPARSE_THRESHOLD,
    dense_cls: type | None = None,
) -> MnaSystem:
    """Build the MNA assembler selected by format and system size.

    ``matrix_format``: ``"dense"`` forces :class:`MnaSystem`,
    ``"sparse"`` forces :class:`SparseMnaSystem` (falling back to dense
    with a warning counter when scipy is absent), ``"auto"`` picks
    sparse once ``node_count + branch_count >= sparse_threshold``.
    ``dense_cls`` overrides the dense assembler class — callers pass
    their module-level ``MnaSystem`` binding so monkeypatched reference
    assemblers (benchmarks) keep flowing through this factory.
    """
    if matrix_format not in MATRIX_FORMATS:
        raise ValueError(
            f"matrix_format must be one of {MATRIX_FORMATS}, got {matrix_format!r}"
        )
    dense_cls = dense_cls or MnaSystem
    size = circuit.node_count + len(circuit.voltage_sources)
    want_sparse = matrix_format == "sparse" or (
        matrix_format == "auto" and size >= sparse_threshold
    )
    tel = telemetry.active()
    if want_sparse and HAVE_SPARSE and dense_cls is MnaSystem:
        if tel is not None:
            tel.count("mna.sparse_selected")
        return SparseMnaSystem(circuit)
    if tel is not None:
        if want_sparse:
            tel.count("mna.sparse_unavailable")
        tel.count("mna.dense_selected")
    return dense_cls(circuit)
