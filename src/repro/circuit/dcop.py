"""DC operating-point solver: damped Newton with homotopy fallbacks.

TFET circuits are numerically nasty for a DC solver — currents span
13+ decades and the cells under study are deliberately bistable — so
the solver runs the standard SPICE escalation: plain Newton-Raphson
(with a per-iteration voltage-step limit), then gmin stepping, then
source stepping.  Callers seed the bistable state via ``initial_guess``
and/or :class:`VoltageClamp` entries.

The Newton iteration is a *modified* Newton: the LU factorization of
the Jacobian is kept and re-used across iterations
(``scipy.linalg.lu_factor``/``lu_solve`` when scipy is present, a
pure-numpy fallback otherwise), and the Jacobian is re-stamped only
when the iteration stalls — a backtracked line search, a weak residual
reduction, or the factorization aging out (``SolverOptions``'s
``jacobian_reuse``/``max_jacobian_age``/``reuse_descent_factor``).
Line searches evaluate the residual only (no Jacobian stores), so a
backtrack costs a fraction of a full assembly.

Both solvers are instrumented against :mod:`repro.telemetry`: when a
session is active, each ``newton_solve`` records its iteration count,
line-search backtracks, trust-region shrinks, and Jacobian
stamp/reuse split (``newton.jacobian_stamps`` vs
``newton.jacobian_reuses``), and ``solve_dc`` records which fallback
tier finally converged.  With telemetry off the cost is one guard
check per solve.  On failure, a forensic snapshot (worst-residual node
names, last dV, fallback tier reached) rides on the
:class:`ConvergenceError` so the exception alone is diagnosable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.netlist import Circuit
from repro.circuit.results import OperatingPoint
from repro.circuit.sparse import DEFAULT_SPARSE_THRESHOLD, SparseFactorization, make_system
from repro.telemetry import core as telemetry
from repro.verify import audits as verify_audits
from repro.verify import core as verify

try:  # pragma: no cover - exercised via either branch in CI images
    from scipy.linalg import get_lapack_funcs

    # Raw LAPACK getrf/getrs: the scipy lu_factor/lu_solve wrappers add
    # ~100 us of validation per call, which is comparable to the
    # factorization itself at SRAM-cell matrix sizes (~20x20).
    _getrf, _getrs = get_lapack_funcs(("getrf", "getrs"), (np.empty((1, 1)),))

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False

__all__ = ["SolverOptions", "ConvergenceError", "newton_solve", "solve_dc"]


def _format_forensic(value) -> str:
    if isinstance(value, float):
        return f"{value:.3e}"
    if isinstance(value, (list, tuple)):
        return "|".join(_format_forensic(v) for v in value)
    return str(value)


class ConvergenceError(RuntimeError):
    """The nonlinear solver failed to converge.

    ``forensics`` carries a structured snapshot of the failure (worst
    residual nodes, last voltage step, fallback tier reached, …); it is
    also rendered into the message so a bare traceback is enough to
    diagnose the failure.
    """

    def __init__(self, message: str, forensics: dict | None = None):
        self.forensics = dict(forensics or {})
        if self.forensics:
            detail = ", ".join(
                f"{key}={_format_forensic(value)}"
                for key, value in self.forensics.items()
            )
            message = f"{message} [{detail}]"
        super().__init__(message)


@dataclass(frozen=True)
class SolverOptions:
    """Newton-Raphson controls."""

    max_iterations: int = 80
    voltage_tolerance: float = 1e-7
    residual_tolerance: float = 1e-10
    step_limit: float = 0.4
    """Maximum node-voltage change per Newton iteration (volts)."""

    gmin: float = 1e-12
    """Permanent node-to-ground conductance floor."""

    line_search_backtracks: int = 6
    """Maximum residual-norm backtracking halvings per iteration."""

    jacobian_reuse: bool = True
    """Re-use the LU factorization across iterations (modified Newton)."""

    max_jacobian_age: int = 6
    """Iterations a factorization may serve before a forced re-stamp."""

    reuse_descent_factor: float = 0.5
    """Re-stamp when ``||f_new|| > factor * ||f_old||`` on a reused
    factorization — a stale direction that stops making fast progress
    is refreshed rather than ridden into a stall."""

    matrix_format: str = "auto"
    """MNA assembly backend: ``"auto"`` (sparse CSC once the system
    reaches ``sparse_threshold`` unknowns, dense below), ``"dense"``,
    or ``"sparse"``.  See :func:`repro.circuit.sparse.make_system`."""

    sparse_threshold: int = DEFAULT_SPARSE_THRESHOLD
    """System size (nodes + source branches) at which ``"auto"``
    switches to sparse assembly."""


class _Factorization:
    """LU of one stamped Jacobian (scipy when present, numpy fallback).

    The scipy path factorizes once and back-substitutes per solve; the
    numpy fallback stores a copy of the matrix and runs
    ``np.linalg.solve`` per request — identical semantics, no
    factorization caching (numpy exposes none), so reuse still saves
    the re-stamp even without scipy.
    """

    __slots__ = ("_lu", "_piv", "_matrix")

    def __init__(self, jac: np.ndarray):
        if _HAVE_SCIPY:
            lu, piv, info = _getrf(jac)
            # getrf signals exact singularity via info > 0 (zero U
            # diagonal) instead of raising; a NaN/Inf Jacobian passes
            # through LAPACK silently.  Normalize both to the
            # LinAlgError contract np.linalg.solve provides.
            if info != 0 or not np.all(np.isfinite(lu)):
                raise np.linalg.LinAlgError("singular matrix in LU factorization")
            self._lu, self._piv, self._matrix = lu, piv, None
        else:
            self._lu = self._piv = None
            self._matrix = jac.copy()

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._matrix is None:
            x, _ = _getrs(self._lu, self._piv, rhs)
            return x
        return np.linalg.solve(self._matrix, rhs)


def _factorize(jac):
    """Factorize a stamped Jacobian — dense LU or sparse splu by type."""
    if isinstance(jac, np.ndarray):
        return _Factorization(jac)
    return SparseFactorization(jac)


def _worst_residual_nodes(
    system: MnaSystem, f: np.ndarray, top: int = 3
) -> list[str]:
    """The ``top`` node names with the largest KCL residual, annotated."""
    names = system.circuit.node_names
    n = min(system.n_nodes, len(names))
    if n == 0:
        return []
    magnitudes = np.abs(f[:n])
    order = np.argsort(magnitudes)[::-1][:top]
    return [f"{names[int(i)]}:{magnitudes[int(i)]:.2e}" for i in order]


def newton_solve(
    system: MnaSystem,
    x0: np.ndarray,
    t: float,
    options: SolverOptions,
    transient: TransientState | None = None,
    clamps: tuple[VoltageClamp, ...] = (),
    extra_gmin: float = 0.0,
    source_scale: float = 1.0,
) -> tuple[np.ndarray, int]:
    """Damped modified Newton with backtracking; returns (x, iterations).

    Device characteristics with locally flat regions (e.g. the dip where
    the TFET's gated reverse component hands over to the p-i-n diode)
    produce huge raw Newton steps; a residual-norm line search keeps the
    iteration descending instead of oscillating across the flat spot.

    The Jacobian LU is re-used across iterations and re-stamped only on
    stall (see :class:`SolverOptions`); a step taken from a stale
    factorization that fails to descend is discarded and retried with a
    fresh stamp before the iteration counts as failed.
    """
    if options.max_iterations < 1:
        raise ValueError(
            f"SolverOptions.max_iterations must be >= 1, got {options.max_iterations}"
        )
    tel = telemetry.active()
    wall_start = time.perf_counter() if tel is not None else 0.0

    x = x0.copy()
    n = system.n_nodes
    gmin = options.gmin + extra_gmin

    def residual(xv: np.ndarray) -> np.ndarray:
        return system.assemble_residual(
            xv, t, gmin=gmin, transient=transient, clamps=clamps,
            source_scale=source_scale,
        )

    f = residual(x)
    factor = None
    age = 0
    stamps = 0
    reuses = 0
    residual_ok_streak = 0
    trust = options.step_limit
    backtracks = 0
    trust_shrinks = 0
    step = float("nan")
    iteration = 0
    while iteration < options.max_iterations:
        iteration += 1

        refresh = (
            factor is None
            or not options.jacobian_reuse
            or age >= options.max_jacobian_age
        )
        if refresh:
            _, jac = system.assemble(
                x, t, gmin=gmin, transient=transient, clamps=clamps,
                source_scale=source_scale, copy=False,
            )
            try:
                factor = _factorize(jac)
            except np.linalg.LinAlgError as exc:
                if tel is not None:
                    tel.count("newton.singular_jacobians")
                    _record_newton(tel, wall_start, iteration, backtracks,
                                   trust_shrinks, stamps, reuses, converged=False)
                raise ConvergenceError(
                    f"singular Jacobian at iteration {iteration}",
                    forensics={"worst_residual_nodes": _worst_residual_nodes(system, f)},
                ) from exc
            age = 0
            stamps += 1
        else:
            age += 1
            reuses += 1

        try:
            delta = factor.solve(-f)
        except np.linalg.LinAlgError as exc:
            if tel is not None:
                tel.count("newton.singular_jacobians")
                _record_newton(tel, wall_start, iteration, backtracks,
                               trust_shrinks, stamps, reuses, converged=False)
            raise ConvergenceError(
                f"singular Jacobian at iteration {iteration}",
                forensics={"worst_residual_nodes": _worst_residual_nodes(system, f)},
            ) from exc
        if not np.all(np.isfinite(delta)):
            if age > 0:
                # The stale factorization produced garbage; retry this
                # iteration with a fresh stamp before giving up.
                factor = None
                iteration -= 1
                continue
            if tel is not None:
                _record_newton(tel, wall_start, iteration, backtracks,
                               trust_shrinks, stamps, reuses, converged=False)
            raise ConvergenceError(
                f"non-finite Newton step at iteration {iteration}",
                forensics={"worst_residual_nodes": _worst_residual_nodes(system, f)},
            )

        max_dv = float(np.max(np.abs(delta[:n]))) if n else 0.0
        if max_dv > trust:
            delta = delta * (trust / max_dv)
            max_dv = trust

        norm_old = float(np.linalg.norm(f))
        scale = 1.0
        descended = False
        for _ in range(options.line_search_backtracks + 1):
            x_try = x + scale * delta
            f_try = residual(x_try)
            if float(np.linalg.norm(f_try)) <= norm_old or norm_old == 0.0:
                descended = True
                break
            scale *= 0.5
            backtracks += 1
        if not descended and age > 0:
            # A stale direction that cannot descend at any scale is not
            # a Newton failure — discard the step, re-stamp at the
            # current point, and retry the iteration (f is untouched:
            # residual() returns fresh arrays).
            factor = None
            iteration -= 1
            continue
        x, f = x_try, f_try
        step = scale * max_dv

        # Trust-region adaptation: a backtracked step means the Newton
        # direction overshoots (flat, curved residual valley near a
        # metastable point) — shrink the cap; a clean full step restores it.
        if scale < 1.0:
            trust = max(0.25 * trust, 1e-7)
            trust_shrinks += 1
            factor = None  # curvature moved under us; re-stamp next iteration
        else:
            trust = min(2.0 * trust, options.step_limit)
            norm_new = float(np.linalg.norm(f))
            if age > 0 and norm_new > options.reuse_descent_factor * norm_old:
                factor = None  # stale direction stopped making fast progress

        max_f = float(np.max(np.abs(f)))
        if max_f < options.residual_tolerance:
            # Convergence is only judged on *fresh*-factorization
            # iterations: a stale LU underestimates the true Newton
            # step, so a reused-Jacobian iterate that looks settled can
            # still carry microvolts of error.  A stale iteration in
            # the endgame re-stamps and confirms on the next pass —
            # acceptance accuracy is identical to full Newton.
            if age == 0:
                residual_ok_streak += 1
                # Near a metastable/bistable boundary the Jacobian is
                # close to singular: the step never settles although
                # KCL holds to the requested current accuracy at every
                # iterate.  Accept once the residual has stayed
                # converged for a few (fresh) steps.
                if step < options.voltage_tolerance or residual_ok_streak >= 3:
                    ver = verify.active()
                    if ver is not None:
                        verify_audits.audit_newton_solution(
                            ver, system, x, t, gmin=gmin,
                            transient=transient, clamps=clamps,
                            source_scale=source_scale,
                            residual_tolerance=options.residual_tolerance,
                        )
                    if tel is not None:
                        _record_newton(tel, wall_start, iteration, backtracks,
                                       trust_shrinks, stamps, reuses,
                                       converged=True)
                    return x, iteration
            else:
                factor = None
        else:
            residual_ok_streak = 0

    if tel is not None:
        _record_newton(tel, wall_start, options.max_iterations, backtracks,
                       trust_shrinks, stamps, reuses, converged=False)
    raise ConvergenceError(
        f"Newton did not converge in {options.max_iterations} iterations",
        forensics={
            "last_dv": step,
            "max_residual": float(np.max(np.abs(f))),
            "worst_residual_nodes": _worst_residual_nodes(system, f),
            "extra_gmin": extra_gmin,
            "source_scale": source_scale,
        },
    )


def _record_newton(
    tel, wall_start: float, iterations: int, backtracks: int,
    trust_shrinks: int, stamps: int, reuses: int, converged: bool,
) -> None:
    tel.count("newton.solves")
    tel.count("newton.iterations", iterations)
    tel.count("newton.backtracks", backtracks)
    tel.count("newton.trust_shrinks", trust_shrinks)
    tel.count("newton.jacobian_stamps", stamps)
    tel.count("newton.jacobian_reuses", reuses)
    tel.observe("newton.iterations_per_solve", iterations)
    tel.add_time("newton.wall_s", time.perf_counter() - wall_start)
    if not converged:
        tel.count("newton.failures")
        tel.event("newton.failure", level="debug", iterations=iterations,
                  backtracks=backtracks)


def _initial_vector(system: MnaSystem, initial_guess: dict[str, float] | None) -> np.ndarray:
    x0 = np.zeros(system.size)
    if initial_guess:
        for name, value in initial_guess.items():
            try:
                idx = system.circuit.index_of(name)
            except KeyError:
                raise ValueError(
                    f"initial guess names node {name!r}, which does not exist "
                    "in this circuit — was it carried over from a different "
                    "circuit?"
                ) from None
            if idx >= 0:
                x0[idx] = value
    return x0


def _seed_vector(system: MnaSystem, x0) -> np.ndarray:
    """Validate and normalize a warm-start seed.

    Accepts a full solution vector or an :class:`OperatingPoint`.  An
    operating point carries its circuit, so it is fingerprint-checked
    (node names and source count, not just vector size) against the
    system being solved: two same-sized circuits with different nets
    would otherwise silently bias the solve toward a foreign solution.
    Same-fingerprint *instances* (e.g. Monte-Carlo samples of one cell)
    remain valid seeds — that is the corners/variation reuse idiom.
    """
    if isinstance(x0, OperatingPoint):
        seed_circuit = x0.circuit
        target = system.circuit
        if seed_circuit is not target and (
            seed_circuit.node_names != target.node_names
            or len(seed_circuit.voltage_sources) != len(target.voltage_sources)
        ):
            raise ValueError(
                "warm-start operating point comes from a different circuit "
                f"(seed nodes {seed_circuit.node_names}, "
                f"target nodes {target.node_names})"
            )
        x0 = x0.x
    x0 = np.asarray(x0, dtype=float).copy()
    if x0.shape != (system.size,):
        raise ValueError(
            f"x0 has shape {x0.shape}, expected ({system.size},)"
        )
    return x0


def _tier_converged(tel, tier: str, t: float) -> None:
    if tel is not None:
        tel.count(f"dcop.converged.{tier}")
        tel.event("dcop.converged", level="debug", tier=tier, sim_time=t)


def solve_dc(
    circuit: Circuit,
    initial_guess: dict[str, float] | None = None,
    clamp_nodes: dict[str, float] | None = None,
    options: SolverOptions | None = None,
    t: float = 0.0,
    system: MnaSystem | None = None,
    x0: np.ndarray | OperatingPoint | None = None,
) -> OperatingPoint:
    """DC operating point with gmin- and source-stepping fallbacks.

    ``clamp_nodes`` adds stiff Norton clamps pinning nodes at the given
    voltages — the supported way to select one state of a bistable
    cell.  The clamps stay active in the returned solution, so release
    them (or hand the solution to the transient integrator, which does)
    before interpreting branch currents that the clamps might carry.

    Sweep and bisection loops that solve the same circuit repeatedly
    pass ``system`` (a prebuilt :class:`MnaSystem`, skipping stamp
    recompilation) and/or ``x0`` (a full previous solution — either a
    raw vector including branch currents or, preferably, the previous
    :class:`OperatingPoint`, which is fingerprint-validated against
    this circuit's node names — overriding ``initial_guess``) to
    warm-start each point from the last one.  A seed from a circuit
    with a different net list raises :class:`ValueError` rather than
    silently biasing the solve.

    Escalation tiers (telemetry counters ``dcop.converged.<tier>`` tell
    which one succeeded): ``warm_start`` (the caller's guess),
    ``cold_start`` (all-zeros restart), ``gmin_stepping``,
    ``source_stepping``.
    """
    options = options or SolverOptions()
    if system is None:
        # The dense class is passed through the module global so tests
        # and benchmarks that monkeypatch ``dcop.MnaSystem`` (e.g. to
        # ReferenceMnaSystem) keep controlling the assembler.
        system = make_system(
            circuit,
            matrix_format=options.matrix_format,
            sparse_threshold=options.sparse_threshold,
            dense_cls=MnaSystem,
        )
    clamps = tuple(
        VoltageClamp(circuit.index_of(name), target)
        for name, target in (clamp_nodes or {}).items()
        if circuit.index_of(name) >= 0
    )
    if x0 is None:
        x0 = _initial_vector(system, initial_guess)
    else:
        x0 = _seed_vector(system, x0)

    tel = telemetry.active()
    if tel is not None:
        tel.count("dcop.solves")
        with tel.span("dcop"):
            return _solve_dc_tiers(circuit, system, clamps, x0, options, t, tel)
    return _solve_dc_tiers(circuit, system, clamps, x0, options, t, None)


def _solve_dc_tiers(
    circuit, system, clamps, x0, options, t, tel
) -> OperatingPoint:
    """The escalation ladder of :func:`solve_dc` (split out so the
    traced path can wrap it in one ``dcop`` span)."""
    warm = bool(np.any(x0 != 0.0))
    first_tier = "warm_start" if warm else "cold_start"
    try:
        x, _ = newton_solve(system, x0, t, options, clamps=clamps)
        _tier_converged(tel, first_tier, t)
        return OperatingPoint(circuit, x, options.gmin)
    except ConvergenceError:
        pass

    # A bad warm start can trap the iteration in a local residual
    # minimum of the TFET reverse branch (node driven above a rail);
    # the all-zeros start approaches every junction from the forward
    # side and avoids the pocket.
    if warm:
        try:
            x, _ = newton_solve(system, np.zeros(system.size), t, options, clamps=clamps)
            _tier_converged(tel, "cold_start", t)
            return OperatingPoint(circuit, x, options.gmin)
        except ConvergenceError:
            pass

    # gmin stepping: relax with a strong shunt, then tighten it away.
    x = x0.copy()
    try:
        for extra in np.geomspace(1e-2, 1e-12, 11):
            x, _ = newton_solve(system, x, t, options, clamps=clamps, extra_gmin=extra)
        x, _ = newton_solve(system, x, t, options, clamps=clamps)
        _tier_converged(tel, "gmin_stepping", t)
        return OperatingPoint(circuit, x, options.gmin)
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from zero.
    x = np.zeros(system.size)
    try:
        for scale in np.linspace(0.1, 1.0, 10):
            x, _ = newton_solve(system, x, t, options, clamps=clamps, source_scale=scale)
    except ConvergenceError as exc:
        if tel is not None:
            tel.count("dcop.failures")
            tel.event("dcop.failure", level="error", sim_time=t, **{
                k: v for k, v in exc.forensics.items() if k != "worst_residual_nodes"
            })
        raise ConvergenceError(
            "DC operating point failed after every fallback tier",
            forensics={"fallback_tier": "source_stepping", **exc.forensics},
        ) from exc
    _tier_converged(tel, "source_stepping", t)
    return OperatingPoint(circuit, x, options.gmin)
