"""DC operating-point solver: damped Newton with homotopy fallbacks.

TFET circuits are numerically nasty for a DC solver — currents span
13+ decades and the cells under study are deliberately bistable — so
the solver runs the standard SPICE escalation: plain Newton-Raphson
(with a per-iteration voltage-step limit), then gmin stepping, then
source stepping.  Callers seed the bistable state via ``initial_guess``
and/or :class:`VoltageClamp` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.mna import MnaSystem, TransientState, VoltageClamp
from repro.circuit.netlist import Circuit
from repro.circuit.results import OperatingPoint

__all__ = ["SolverOptions", "ConvergenceError", "newton_solve", "solve_dc"]


class ConvergenceError(RuntimeError):
    """The nonlinear solver failed to converge."""


@dataclass(frozen=True)
class SolverOptions:
    """Newton-Raphson controls."""

    max_iterations: int = 80
    voltage_tolerance: float = 1e-7
    residual_tolerance: float = 1e-10
    step_limit: float = 0.4
    """Maximum node-voltage change per Newton iteration (volts)."""

    gmin: float = 1e-12
    """Permanent node-to-ground conductance floor."""

    line_search_backtracks: int = 6
    """Maximum residual-norm backtracking halvings per iteration."""


def newton_solve(
    system: MnaSystem,
    x0: np.ndarray,
    t: float,
    options: SolverOptions,
    transient: TransientState | None = None,
    clamps: tuple[VoltageClamp, ...] = (),
    extra_gmin: float = 0.0,
    source_scale: float = 1.0,
) -> tuple[np.ndarray, int]:
    """Damped Newton iteration with backtracking; returns (x, iterations).

    Device characteristics with locally flat regions (e.g. the dip where
    the TFET's gated reverse component hands over to the p-i-n diode)
    produce huge raw Newton steps; a residual-norm line search keeps the
    iteration descending instead of oscillating across the flat spot.
    """
    x = x0.copy()
    n = system.n_nodes

    def residual(xv: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return system.assemble(
            xv,
            t,
            gmin=options.gmin + extra_gmin,
            transient=transient,
            clamps=clamps,
            source_scale=source_scale,
        )

    f, jac = residual(x)
    residual_ok_streak = 0
    trust = options.step_limit
    for iteration in range(1, options.max_iterations + 1):
        try:
            delta = np.linalg.solve(jac, -f)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular Jacobian at iteration {iteration}") from exc
        if not np.all(np.isfinite(delta)):
            raise ConvergenceError(f"non-finite Newton step at iteration {iteration}")

        max_dv = float(np.max(np.abs(delta[:n]))) if n else 0.0
        if max_dv > trust:
            delta = delta * (trust / max_dv)
            max_dv = trust

        norm_old = float(np.linalg.norm(f))
        scale = 1.0
        for _ in range(options.line_search_backtracks + 1):
            x_try = x + scale * delta
            f_try, jac_try = residual(x_try)
            if float(np.linalg.norm(f_try)) <= norm_old or norm_old == 0.0:
                break
            scale *= 0.5
        x, f, jac = x_try, f_try, jac_try
        step = scale * max_dv

        # Trust-region adaptation: a backtracked step means the Newton
        # direction overshoots (flat, curved residual valley near a
        # metastable point) — shrink the cap; a clean full step restores it.
        if scale < 1.0:
            trust = max(0.25 * trust, 1e-7)
        else:
            trust = min(2.0 * trust, options.step_limit)

        max_f = float(np.max(np.abs(f)))
        if max_f < options.residual_tolerance:
            residual_ok_streak += 1
            # Near a metastable/bistable boundary the Jacobian is close
            # to singular: the step never settles although KCL holds to
            # the requested current accuracy at every iterate.  Accept
            # once the residual has stayed converged for a few steps.
            if step < options.voltage_tolerance or residual_ok_streak >= 3:
                return x, iteration
        else:
            residual_ok_streak = 0
    raise ConvergenceError(
        f"Newton did not converge in {options.max_iterations} iterations "
        f"(last max dV = {step:.3e}, max |f| = {float(np.max(np.abs(f))):.3e})"
    )


def _initial_vector(system: MnaSystem, initial_guess: dict[str, float] | None) -> np.ndarray:
    x0 = np.zeros(system.size)
    if initial_guess:
        for name, value in initial_guess.items():
            idx = system.circuit.index_of(name)
            if idx >= 0:
                x0[idx] = value
    return x0


def solve_dc(
    circuit: Circuit,
    initial_guess: dict[str, float] | None = None,
    clamp_nodes: dict[str, float] | None = None,
    options: SolverOptions | None = None,
    t: float = 0.0,
) -> OperatingPoint:
    """DC operating point with gmin- and source-stepping fallbacks.

    ``clamp_nodes`` adds stiff Norton clamps pinning nodes at the given
    voltages — the supported way to select one state of a bistable
    cell.  The clamps stay active in the returned solution, so release
    them (or hand the solution to the transient integrator, which does)
    before interpreting branch currents that the clamps might carry.
    """
    options = options or SolverOptions()
    system = MnaSystem(circuit)
    clamps = tuple(
        VoltageClamp(circuit.index_of(name), target)
        for name, target in (clamp_nodes or {}).items()
        if circuit.index_of(name) >= 0
    )
    x0 = _initial_vector(system, initial_guess)

    try:
        x, _ = newton_solve(system, x0, t, options, clamps=clamps)
        return OperatingPoint(circuit, x, options.gmin)
    except ConvergenceError:
        pass

    # A bad warm start can trap the iteration in a local residual
    # minimum of the TFET reverse branch (node driven above a rail);
    # the all-zeros start approaches every junction from the forward
    # side and avoids the pocket.
    if np.any(x0 != 0.0):
        try:
            x, _ = newton_solve(system, np.zeros(system.size), t, options, clamps=clamps)
            return OperatingPoint(circuit, x, options.gmin)
        except ConvergenceError:
            pass

    # gmin stepping: relax with a strong shunt, then tighten it away.
    x = x0.copy()
    try:
        for extra in np.geomspace(1e-2, 1e-12, 11):
            x, _ = newton_solve(system, x, t, options, clamps=clamps, extra_gmin=extra)
        x, _ = newton_solve(system, x, t, options, clamps=clamps)
        return OperatingPoint(circuit, x, options.gmin)
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from zero.
    x = np.zeros(system.size)
    for scale in np.linspace(0.1, 1.0, 10):
        x, _ = newton_solve(system, x, t, options, clamps=clamps, source_scale=scale)
    return OperatingPoint(circuit, x, options.gmin)
