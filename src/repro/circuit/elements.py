"""Circuit elements understood by the MNA assembler.

Elements are passive data holders; the assembler in
:mod:`repro.circuit.mna` knows how to stamp each type.  Node references
are integer indices handed out by :class:`repro.circuit.netlist.Circuit`
(``GROUND`` for the reference node).

Sign conventions (documented once, used everywhere):

* A transistor's drain current ``i_d`` flows from the drain terminal
  through the channel to the source terminal; it is positive for a
  forward-conducting n-type device.
* A voltage source's branch current flows from node ``a`` through the
  source to node ``b``; the current the source *delivers* into the
  circuit at ``a`` is its negative.
* A current source drives its ``value`` from node ``a`` to node ``b``
  through itself (it removes current from ``a`` and injects it at ``b``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.circuit.waveforms import Constant, Waveform
from repro.devices.charges import ChargeFunction

__all__ = [
    "GROUND",
    "TransistorModel",
    "Polarity",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Transistor",
]

GROUND = -1
"""Node index of the reference (ground) node."""


class TransistorModel(Protocol):
    """What the assembler needs from a device model (n-type reference)."""

    def evaluate_density(
        self, vgs: np.ndarray | float, vds: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (current density, d/dV_GS, d/dV_DS) in A/um and S/um."""
        ...


Polarity = str  # "n" or "p"


def _check_node(node: int, label: str) -> None:
    if node < GROUND:
        raise ValueError(f"{label} node index {node} is invalid")


@dataclass(frozen=True)
class Resistor:
    """A linear resistor between nodes ``a`` and ``b``."""

    a: int
    b: int
    resistance: float

    def __post_init__(self) -> None:
        _check_node(self.a, "resistor a")
        _check_node(self.b, "resistor b")
        if self.resistance <= 0.0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")


@dataclass(frozen=True)
class Capacitor:
    """A (possibly nonlinear) capacitor defined by a charge function.

    ``scale`` multiplies the charge — used for per-um-width device
    charge functions scaled by the transistor width.
    """

    a: int
    b: int
    charge: ChargeFunction
    scale: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        _check_node(self.a, "capacitor a")
        _check_node(self.b, "capacitor b")
        if self.scale < 0.0:
            raise ValueError("capacitor scale cannot be negative")


@dataclass(frozen=True)
class VoltageSource:
    """An independent voltage source; adds one MNA branch unknown."""

    a: int
    b: int
    waveform: Waveform
    name: str = ""

    def __post_init__(self) -> None:
        _check_node(self.a, "source a")
        _check_node(self.b, "source b")

    @staticmethod
    def dc(a: int, b: int, level: float, name: str = "") -> "VoltageSource":
        return VoltageSource(a, b, Constant(level), name)


@dataclass(frozen=True)
class CurrentSource:
    """An independent current source driving ``value`` from a to b."""

    a: int
    b: int
    waveform: Waveform
    name: str = ""

    def __post_init__(self) -> None:
        _check_node(self.a, "source a")
        _check_node(self.b, "source b")


@dataclass(frozen=True)
class Transistor:
    """A 3-terminal FET instance (drain, gate, source).

    ``model`` is the n-type reference characteristic; ``polarity`` "p"
    mirrors it (I_p(V_GS, V_DS) = -I_n(-V_GS, -V_DS)), which is exactly
    how the paper's complementary TFET pair is constructed.  ``width_um``
    scales the current density and the attached charge functions.
    """

    drain: int
    gate: int
    source: int
    model: TransistorModel
    polarity: Polarity = "n"
    width_um: float = 0.1
    name: str = ""

    def __post_init__(self) -> None:
        _check_node(self.drain, "drain")
        _check_node(self.gate, "gate")
        _check_node(self.source, "source")
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.width_um <= 0.0:
            raise ValueError(f"width must be positive, got {self.width_um}")
