"""Result containers for DC and transient analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit

__all__ = ["OperatingPoint", "TransientResult"]


@dataclass(frozen=True)
class OperatingPoint:
    """A converged DC solution."""

    circuit: Circuit
    x: np.ndarray
    gmin: float = 0.0

    def voltage(self, name: str) -> float:
        """Node voltage in volts (0.0 for ground)."""
        idx = self.circuit.index_of(name)
        return 0.0 if idx < 0 else float(self.x[idx])

    def voltages(self) -> dict[str, float]:
        return {name: self.voltage(name) for name in self.circuit.node_names}

    def branch_current(self, source_name: str) -> float:
        """Current flowing from node a through the source to node b."""
        m = self.circuit.source_index(source_name)
        return float(self.x[self.circuit.node_count + m])

    def source_power(self, source_name: str) -> float:
        """Power delivered *into the circuit* by the named source (watts)."""
        m = self.circuit.source_index(source_name)
        src = self.circuit.voltage_sources[m]
        va = 0.0 if src.a < 0 else float(self.x[src.a])
        vb = 0.0 if src.b < 0 else float(self.x[src.b])
        return -(va - vb) * self.branch_current(source_name)

    def total_source_power(self) -> float:
        """Total power delivered by all sources (equals dissipation)."""
        return sum(self.source_power(s.name) for s in self.circuit.voltage_sources)


class TransientResult:
    """Sampled waveforms from a transient run."""

    def __init__(self, circuit: Circuit, times: np.ndarray, states: np.ndarray):
        if states.shape[0] != times.shape[0]:
            raise ValueError("time and state arrays disagree in length")
        self.circuit = circuit
        self.times = times
        self.states = states

    def voltage(self, name: str) -> np.ndarray:
        """Waveform of a node voltage (zeros for ground)."""
        idx = self.circuit.index_of(name)
        if idx < 0:
            return np.zeros_like(self.times)
        return self.states[:, idx]

    def branch_current(self, source_name: str) -> np.ndarray:
        m = self.circuit.source_index(source_name)
        return self.states[:, self.circuit.node_count + m]

    def at(self, name: str, t: float) -> float:
        """Node voltage at time ``t`` (linear interpolation)."""
        return float(np.interp(t, self.times, self.voltage(name)))

    def final(self, name: str) -> float:
        return float(self.voltage(name)[-1])

    def window(self, t0: float, t1: float) -> np.ndarray:
        """Boolean mask selecting samples with t0 <= t <= t1."""
        if t1 < t0:
            raise ValueError("window end precedes start")
        return (self.times >= t0) & (self.times <= t1)

    def min_difference(self, a: str, b: str, t0: float, t1: float) -> float:
        """Minimum of v(a) - v(b) over the window — the DRNM integrand."""
        mask = self.window(t0, t1)
        if not np.any(mask):
            raise ValueError("window contains no samples")
        diff = self.voltage(a)[mask] - self.voltage(b)[mask]
        return float(np.min(diff))

    def crossing_time(self, a: str, b: str, after: float = 0.0) -> float | None:
        """First time after ``after`` at which v(a) - v(b) changes sign.

        Returns None when the two waveforms never cross — e.g. a write
        that fails to flip the cell.
        """
        diff = self.voltage(a) - self.voltage(b)
        valid = self.times >= after
        d = diff[valid]
        t = self.times[valid]
        if d.size < 2:
            return None
        sign_change = np.nonzero(np.diff(np.signbit(d)))[0]
        if sign_change.size == 0:
            return None
        k = sign_change[0]
        # Linear interpolation of the zero crossing inside the interval.
        frac = d[k] / (d[k] - d[k + 1])
        return float(t[k] + frac * (t[k + 1] - t[k]))
