"""Human-readable netlist and operating-point reports.

SPICE users debug with ``.print`` and netlist listings; these helpers
are the equivalent for this simulator — used in tests, examples, and
whenever a cell misbehaves.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.results import OperatingPoint
from repro.circuit.waveforms import Constant

__all__ = ["format_netlist", "format_operating_point"]


def _node_name(circuit: Circuit, index: int) -> str:
    if index < 0:
        return "0"
    return circuit.node_names[index]


def _waveform_label(waveform) -> str:
    if isinstance(waveform, Constant):
        return f"DC {waveform.level:g}V"
    label = type(waveform).__name__
    breakpoints = waveform.breakpoints()
    if breakpoints:
        label += f" ({len(breakpoints)} corners, first at {breakpoints[0]:.3g}s)"
    return label


def format_netlist(circuit: Circuit) -> str:
    """A SPICE-deck-style listing of the circuit."""
    lines = [f"* {circuit.title or 'untitled circuit'}"]
    lines.append(
        f"* {circuit.node_count} nodes, {len(circuit.transistors)} transistors, "
        f"{len(circuit.capacitors)} capacitors, "
        f"{len(circuit.voltage_sources)} voltage sources"
    )
    for k, t in enumerate(circuit.transistors):
        lines.append(
            f"M{k} {_node_name(circuit, t.drain)} {_node_name(circuit, t.gate)} "
            f"{_node_name(circuit, t.source)} {t.polarity}type W={t.width_um:g}u "
            f"* {t.name}"
        )
    for k, r in enumerate(circuit.resistors):
        lines.append(
            f"R{k} {_node_name(circuit, r.a)} {_node_name(circuit, r.b)} "
            f"{r.resistance:g}"
        )
    for k, c in enumerate(circuit.capacitors):
        nominal = float(np.asarray(c.charge.capacitance(0.0))) * c.scale
        lines.append(
            f"C{k} {_node_name(circuit, c.a)} {_node_name(circuit, c.b)} "
            f"{nominal:.4g} * {c.name or type(c.charge).__name__}"
        )
    for k, v in enumerate(circuit.voltage_sources):
        lines.append(
            f"V{k} {_node_name(circuit, v.a)} {_node_name(circuit, v.b)} "
            f"{_waveform_label(v.waveform)} * {v.name}"
        )
    for k, i in enumerate(circuit.current_sources):
        lines.append(
            f"I{k} {_node_name(circuit, i.a)} {_node_name(circuit, i.b)} "
            f"{_waveform_label(i.waveform)} * {i.name}"
        )
    lines.append(".end")
    return "\n".join(lines)


def format_operating_point(op: OperatingPoint) -> str:
    """Node voltages and source currents of a DC solution."""
    lines = ["* operating point"]
    for name in op.circuit.node_names:
        lines.append(f"v({name}) = {op.voltage(name):+.6f} V")
    for source in op.circuit.voltage_sources:
        lines.append(
            f"i({source.name}) = {op.branch_current(source.name):+.4e} A  "
            f"(delivers {op.source_power(source.name):+.4e} W)"
        )
    lines.append(f"total delivered power = {op.total_source_power():.4e} W")
    return "\n".join(lines)
