"""SPICE-subset netlist parser.

Round-trips with :func:`repro.circuit.report.format_netlist` in spirit:
decks written by hand (or exported from other tools) can be loaded into
a :class:`Circuit`.  Supported card types:

* ``R<name> n1 n2 value`` — resistor;
* ``C<name> n1 n2 value`` — linear capacitor;
* ``V<name> n+ n- DC value`` / ``... PULSE(v1 v2 td width [tedge])`` /
  ``... PWL(t1 v1 t2 v2 ...)`` — voltage source;
* ``I<name> n+ n- DC value`` — current source;
* ``M<name> d g s model [W=value]`` — transistor; ``model`` is looked
  up in the device registry (``ntfet``, ``ptfet``, ``nmos``, ``pmos``
  by default, extendable via ``extra_models``);
* ``*`` comments, blank lines, and a terminating ``.end``; the first
  comment line of the deck becomes the circuit title.

Engineering suffixes are understood (``f p n u m k meg g t``), e.g.
``10k``, ``1.5f``, ``0.8``.
"""

from __future__ import annotations

import re

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Constant, PiecewiseLinear, Pulse

__all__ = ["NetlistSyntaxError", "parse_netlist", "parse_value"]

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[tgkmunpf])?$", re.IGNORECASE)


class NetlistSyntaxError(ValueError):
    """A netlist card could not be parsed; carries the line number."""

    def __init__(self, line_number: int, line: str, reason: str):
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number


def parse_value(token: str) -> float:
    """Parse a SPICE number with an optional engineering suffix."""
    match = _VALUE_RE.match(token.strip())
    if not match:
        raise ValueError(f"cannot parse value {token!r}")
    base = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    return base * _SUFFIXES.get(suffix, 1.0)


def _default_models() -> dict:
    from repro.devices.library import nmos_device, pmos_device, tfet_device

    tfet = tfet_device()
    return {
        "ntfet": (tfet, "n"),
        "ptfet": (tfet, "p"),
        "nmos": (nmos_device(), "n"),
        "pmos": (pmos_device(), "p"),
    }


def _split_functional(tokens: list[str]) -> list[str]:
    """Re-join tokens so PULSE( ... ) / PWL( ... ) become one token."""
    joined = " ".join(tokens)
    out = []
    pos = 0
    while pos < len(joined):
        m = re.match(r"(pulse|pwl)\s*\(", joined[pos:], re.IGNORECASE)
        if m:
            depth = 0
            start = pos
            k = pos + m.end() - 1
            while k < len(joined):
                if joined[k] == "(":
                    depth += 1
                elif joined[k] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            if depth != 0:
                raise ValueError("unbalanced parentheses")
            out.append(joined[start : k + 1])
            pos = k + 1
        else:
            m2 = re.match(r"\s*(\S+)", joined[pos:])
            if not m2:
                break
            out.append(m2.group(1))
            pos += m2.end()
    return out


def _parse_source_waveform(tokens: list[str]):
    spec = " ".join(tokens)
    m = re.match(r"(pulse|pwl)\s*\((.*)\)$", spec, re.IGNORECASE)
    if m:
        kind = m.group(1).lower()
        args = [parse_value(v) for v in m.group(2).replace(",", " ").split()]
        if kind == "pulse":
            if len(args) not in (4, 5):
                raise ValueError("PULSE needs (v1 v2 tstart width [tedge])")
            edge = args[4] if len(args) == 5 else 5e-12
            return Pulse(base=args[0], active=args[1], t_start=args[2],
                         width=args[3], t_edge=edge)
        if len(args) < 2 or len(args) % 2:
            raise ValueError("PWL needs time/value pairs")
        return PiecewiseLinear(tuple(args[0::2]), tuple(args[1::2]))
    if tokens and tokens[0].lower() == "dc":
        tokens = tokens[1:]
    if len(tokens) != 1:
        raise ValueError("expected a single DC value")
    return Constant(parse_value(tokens[0]))


def parse_netlist(text: str, extra_models: dict | None = None) -> Circuit:
    """Build a :class:`Circuit` from a SPICE-subset deck."""
    models = _default_models()
    if extra_models:
        models.update(extra_models)

    circuit = Circuit()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.lstrip()
        if stripped.startswith("*"):
            if not circuit.title:
                circuit.title = stripped.lstrip("* ").strip()
            continue
        line = raw.split("*", 1)[0].strip()
        if not line:
            continue
        if line.lower() == ".end":
            break
        if line.startswith("."):
            raise NetlistSyntaxError(line_number, raw, "unsupported dot-card")

        try:
            tokens = _split_functional(line.split())
            kind = tokens[0][0].upper()
            name = tokens[0]
            if kind == "R":
                circuit.add_resistor(tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "C":
                circuit.add_capacitor(tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "V":
                circuit.add_voltage_source(
                    name, tokens[1], tokens[2], _parse_source_waveform(tokens[3:])
                )
            elif kind == "I":
                circuit.add_current_source(
                    name, tokens[1], tokens[2], _parse_source_waveform(tokens[3:])
                )
            elif kind == "M":
                model_name = tokens[4].lower()
                if model_name not in models:
                    known = ", ".join(sorted(models))
                    raise ValueError(f"unknown model {model_name!r} (known: {known})")
                model, polarity = models[model_name]
                width = 0.1
                for extra in tokens[5:]:
                    key, _, value = extra.partition("=")
                    if key.lower() == "w":
                        width = parse_value(value) * 1e6  # metres -> um
                    else:
                        raise ValueError(f"unknown transistor parameter {extra!r}")
                circuit.add_transistor(
                    name, tokens[1], tokens[2], tokens[3], model, polarity, width
                )
            else:
                raise ValueError(f"unknown card type {kind!r}")
        except NetlistSyntaxError:
            raise
        except (ValueError, IndexError) as exc:
            raise NetlistSyntaxError(line_number, raw, str(exc)) from exc
    return circuit
