"""SPICE-class circuit simulation: MNA + Newton-Raphson + transient.

This package is the reproduction's stand-in for the commercial
simulator the paper drives through Verilog-A lookup-table models.
"""

from repro.circuit.ac import AcResult, ac_analysis
from repro.circuit.dcop import ConvergenceError, SolverOptions, solve_dc
from repro.circuit.elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Resistor,
    Transistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.parser import parse_netlist
from repro.circuit.report import format_netlist, format_operating_point
from repro.circuit.results import OperatingPoint, TransientResult
from repro.circuit.sparse import SparseMnaSystem, make_system
from repro.circuit.sweep import dc_sweep
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.circuit.waveforms import Constant, PiecewiseLinear, Pulse, Waveform

__all__ = [
    "AcResult",
    "ac_analysis",
    "parse_netlist",
    "format_netlist",
    "format_operating_point",
    "ConvergenceError",
    "SolverOptions",
    "solve_dc",
    "GROUND",
    "Capacitor",
    "CurrentSource",
    "Resistor",
    "Transistor",
    "VoltageSource",
    "Circuit",
    "OperatingPoint",
    "TransientResult",
    "SparseMnaSystem",
    "make_system",
    "dc_sweep",
    "TransientOptions",
    "simulate_transient",
    "Constant",
    "PiecewiseLinear",
    "Pulse",
    "Waveform",
]
