"""Transient analysis: adaptive backward-Euler integration.

Backward Euler is L-stable, which matters here: SRAM flip events mix
picosecond regenerative transitions with nanosecond settling tails, and
the solver must never ring artificially on the stiff part (a trapezoid
oscillation across a separatrix would corrupt every WL_crit bisection).

Step control combines three mechanisms:

* waveform breakpoints are always landed on exactly;
* a step is rejected when Newton fails or when any node moves more than
  ``max_voltage_step`` in one step (temporal resolution guard);
* the step grows after easy steps and shrinks after hard ones.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.circuit.dcop import (
    ConvergenceError,
    SolverOptions,
    newton_solve,
    solve_dc,
)
from repro.circuit.mna import MnaSystem, TransientState
from repro.circuit.netlist import Circuit
from repro.circuit.results import TransientResult

__all__ = ["TransientOptions", "simulate_transient"]


@dataclass(frozen=True)
class TransientOptions:
    """Integrator controls."""

    initial_step: float = 1e-12
    max_step: float = 5e-11
    min_step: float = 1e-17
    max_voltage_step: float = 0.06
    """Largest accepted per-step node-voltage change (volts)."""

    growth: float = 1.4
    shrink: float = 0.35
    easy_iterations: int = 4
    """Newton iteration count at or below which the step may grow."""

    method: str = "backward_euler"
    """"backward_euler" (L-stable, default) or "trapezoidal"
    (second-order accurate; use for smooth waveform-accuracy studies,
    not for separatrix races where its ringing can corrupt outcomes)."""

    solver: SolverOptions = SolverOptions()

    def __post_init__(self) -> None:
        if self.method not in ("backward_euler", "trapezoidal"):
            raise ValueError(f"unknown integration method {self.method!r}")


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    initial_conditions: dict[str, float] | None = None,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop``.

    ``initial_conditions`` pin the named nodes for the t = 0 operating
    point (bistable-state selection) and are released afterwards.
    """
    if t_stop <= 0.0:
        raise ValueError("t_stop must be positive")
    options = options or TransientOptions()

    op = solve_dc(
        circuit,
        initial_guess=initial_conditions,
        clamp_nodes=initial_conditions,
        options=options.solver,
    )
    system = MnaSystem(circuit)
    x = op.x.copy()
    charges = system.capacitor_charges(x)
    currents = np.zeros_like(charges)  # caps carry no current at DC

    breakpoints = [b for b in circuit.breakpoints() if 0.0 < b < t_stop]
    breakpoints.append(t_stop)

    times = [0.0]
    states = [x.copy()]

    t = 0.0
    h = options.initial_step
    while t < t_stop - 1e-21:
        # Never step across a breakpoint; land on it exactly.
        k = bisect.bisect_right(breakpoints, t)
        next_break = breakpoints[k] if k < len(breakpoints) else t_stop
        h_try = min(h, options.max_step, next_break - t)

        accepted = False
        while not accepted:
            state = TransientState(
                timestep=h_try,
                capacitor_charges=charges,
                capacitor_currents=currents,
                method=options.method,
            )
            try:
                x_new, iterations = newton_solve(
                    system, x, t + h_try, options.solver, transient=state
                )
                dv = float(np.max(np.abs(x_new[: system.n_nodes] - x[: system.n_nodes])))
                if dv > options.max_voltage_step and h_try > options.min_step:
                    raise ConvergenceError("voltage step limit")
                accepted = True
            except ConvergenceError:
                h_try *= options.shrink
                if h_try < options.min_step:
                    raise ConvergenceError(
                        f"transient step underflow at t = {t:.3e} s"
                    ) from None

        t += h_try
        x = x_new
        currents = system.capacitor_currents(x, state)
        charges = system.capacitor_charges(x)
        times.append(t)
        states.append(x.copy())

        if iterations <= options.easy_iterations and h_try >= h:
            h = min(h_try * options.growth, options.max_step)
        else:
            h = h_try

    return TransientResult(circuit, np.array(times), np.array(states))
