"""Transient analysis: adaptive backward-Euler integration.

Backward Euler is L-stable, which matters here: SRAM flip events mix
picosecond regenerative transitions with nanosecond settling tails, and
the solver must never ring artificially on the stiff part (a trapezoid
oscillation across a separatrix would corrupt every WL_crit bisection).

Step control combines three mechanisms:

* waveform breakpoints are always landed on exactly;
* a step is rejected when Newton fails or when any node moves more than
  ``max_voltage_step`` in one step (temporal resolution guard);
* the step grows after easy steps and shrinks after hard ones.

Each step's Newton iteration is warm-started from a linear
extrapolation of the last two accepted points (``TransientOptions.predictor``)
— on smooth segments this lands within an iteration or two of the
solution.  If Newton rejects the extrapolated seed, the step retries
once from the last accepted point before shrinking, so the predictor
can never make a step fail that would have succeeded without it.

With a :mod:`repro.telemetry` session active, the integrator records
accepted/rejected step counts (split by rejection cause), predictor
fallbacks, a step-size histogram, and breakpoint landings; disabled,
the cost is one guard check per simulation call.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass

import numpy as np

from repro.circuit.dcop import (
    ConvergenceError,
    SolverOptions,
    newton_solve,
    solve_dc,
)
from repro.circuit.mna import MnaSystem, TransientState
from repro.circuit.netlist import Circuit
from repro.circuit.results import TransientResult
from repro.circuit.sparse import make_system
from repro.telemetry import core as telemetry
from repro.verify import audits as verify_audits
from repro.verify import core as verify

__all__ = ["TransientOptions", "simulate_transient"]

_EPS = float(np.finfo(float).eps)


@dataclass(frozen=True)
class TransientOptions:
    """Integrator controls."""

    initial_step: float = 1e-12
    max_step: float = 5e-11
    min_step: float = 1e-17
    max_voltage_step: float = 0.06
    """Largest accepted per-step node-voltage change (volts)."""

    growth: float = 1.4
    shrink: float = 0.35
    easy_iterations: int = 4
    """Newton iteration count at or below which the step may grow."""

    method: str = "backward_euler"
    """"backward_euler" (L-stable, default) or "trapezoidal"
    (second-order accurate; use for smooth waveform-accuracy studies,
    not for separatrix races where its ringing can corrupt outcomes)."""

    predictor: str = "linear"
    """Newton warm-start seed per step: "linear" extrapolates the last
    two accepted points; "none" seeds from the last accepted point
    (the pre-optimization behaviour)."""

    solver: SolverOptions = SolverOptions()

    def __post_init__(self) -> None:
        if self.method not in ("backward_euler", "trapezoidal"):
            raise ValueError(f"unknown integration method {self.method!r}")
        if self.predictor not in ("linear", "none"):
            raise ValueError(f"unknown predictor {self.predictor!r}")


def _attempt_step(
    system: MnaSystem,
    x: np.ndarray,
    x_prev: np.ndarray | None,
    h_prev: float,
    t: float,
    h_try: float,
    charges: np.ndarray,
    currents: np.ndarray,
    options: TransientOptions,
    tel,
) -> tuple[np.ndarray, int, TransientState, float]:
    """Shrink ``h_try`` until one step from ``t`` is accepted.

    Each attempt seeds Newton from the extrapolated predictor (when
    enabled and history exists); a Newton failure on an extrapolated
    seed retries from ``x`` at the same ``h_try`` before shrinking.

    Returns ``(x_new, iterations, state, h_used)`` — all four always
    bound on return, so the caller never touches conditionally-assigned
    locals.  Raises :class:`ConvergenceError` (with forensics) when the
    step underflows ``min_step``.
    """
    extrapolate = (
        options.predictor == "linear" and x_prev is not None and h_prev > 0.0
    )
    while True:
        state = TransientState(
            timestep=h_try,
            capacitor_charges=charges,
            capacitor_currents=currents,
            method=options.method,
        )
        reason = "newton"
        dv = float("nan")
        seeds = [x + (x - x_prev) * (h_try / h_prev)] if extrapolate else []
        seeds.append(x)
        try:
            for attempt, x_seed in enumerate(seeds):
                try:
                    x_new, iterations = newton_solve(
                        system, x_seed, t + h_try, options.solver, transient=state
                    )
                    break
                except ConvergenceError:
                    if attempt == len(seeds) - 1:
                        raise
                    if tel is not None:
                        tel.count("transient.predictor_fallbacks")
            dv = float(np.max(np.abs(x_new[: system.n_nodes] - x[: system.n_nodes])))
            if dv <= options.max_voltage_step or h_try <= options.min_step:
                return x_new, iterations, state, h_try
            reason = "dv_limit"
        except ConvergenceError:
            pass

        if tel is not None:
            tel.count("transient.steps_rejected")
            tel.count(f"transient.rejected_{reason}")
        h_try *= options.shrink
        if h_try < options.min_step:
            if tel is not None:
                tel.count("transient.step_underflows")
            raise ConvergenceError(
                f"transient step underflow at t = {t:.3e} s",
                forensics={
                    "time_s": t,
                    "step_s": h_try,
                    "last_rejection": reason,
                    "last_dv": dv,
                },
            ) from None


def simulate_transient(
    circuit: Circuit,
    t_stop: float,
    initial_conditions: dict[str, float] | None = None,
    options: TransientOptions | None = None,
    operating_point_guess: dict[str, float] | None = None,
) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop``.

    ``initial_conditions`` pin the named nodes for the t = 0 operating
    point (bistable-state selection) and are released afterwards.

    ``operating_point_guess`` seeds the t = 0 DC solve with node
    voltages from a previous converged run of the same cell — bisection
    loops (WL_crit) pass the last solution so repeated simulations skip
    the homotopy-from-zero ramp.  A bad guess only costs the solver its
    warm-start tier; the cold-start and stepping fallbacks still run.
    A guess naming a node this circuit does not have (a seed carried
    over from a different circuit) raises :class:`ValueError`.
    """
    if t_stop <= 0.0:
        raise ValueError("t_stop must be positive")
    options = options or TransientOptions()

    tel = telemetry.active()
    if tel is not None:
        with tel.span("transient"):
            return _simulate(
                circuit, t_stop, initial_conditions, options,
                operating_point_guess, tel,
            )
    return _simulate(
        circuit, t_stop, initial_conditions, options, operating_point_guess, None
    )


def _simulate(
    circuit, t_stop, initial_conditions, options, operating_point_guess, tel
) -> TransientResult:
    """The integration loop of :func:`simulate_transient` (split out so
    the traced path can wrap it in one ``transient`` span)."""
    wall_start = time.perf_counter() if tel is not None else 0.0

    guess = dict(operating_point_guess or {})
    guess.update(initial_conditions or {})
    # Dense class through the module global so monkeypatched assemblers
    # (ReferenceMnaSystem in benchmarks) keep flowing through the factory.
    system = make_system(
        circuit,
        matrix_format=options.solver.matrix_format,
        sparse_threshold=options.solver.sparse_threshold,
        dense_cls=MnaSystem,
    )
    op = solve_dc(
        circuit,
        initial_guess=guess or None,
        clamp_nodes=initial_conditions,
        options=options.solver,
        system=system,
    )
    x = op.x.copy()
    charges = system.capacitor_charges(x)
    currents = np.zeros_like(charges)  # caps carry no current at DC

    breakpoints = [b for b in circuit.breakpoints() if 0.0 < b < t_stop]
    breakpoints.append(t_stop)

    times = [0.0]
    states = [x.copy()]

    t = 0.0
    h = options.initial_step
    x_prev: np.ndarray | None = None
    h_prev = 0.0
    while t < t_stop - 1e-21:
        # Never step across a breakpoint; land on it exactly.
        k = bisect.bisect_right(breakpoints, t)
        next_break = breakpoints[k] if k < len(breakpoints) else t_stop
        h_cap = min(h, options.max_step, next_break - t)

        x_new, iterations, state, h_try = _attempt_step(
            system, x, x_prev, h_prev, t, h_cap, charges, currents, options, tel
        )

        t += h_try
        # Snap accumulated-roundoff landings onto the breakpoint.  A
        # fixed step that divides the breakpoint time exactly in real
        # arithmetic can still leave ``t`` a few ulps short of it in
        # floats; the leftover ~ulp sliver step would get a companion
        # conductance C/h so large that Newton can never satisfy the
        # absolute residual tolerance, and the run dies in a step
        # underflow.  The slack is a few ulps — far below any real
        # waveform feature spacing.
        if t != next_break and abs(next_break - t) <= 64.0 * _EPS * next_break:
            t = next_break
        x_prev, h_prev = x, h_try
        x = x_new
        currents = system.capacitor_currents(x, state)
        charges = system.capacitor_charges(x)
        times.append(t)
        states.append(x.copy())

        ver = verify.active()
        if ver is not None:
            verify_audits.audit_transient_step(
                ver, system, x_prev, x, state, charges, currents
            )

        if tel is not None:
            tel.count("transient.steps_accepted")
            tel.observe("transient.step_seconds", h_try)
            if t >= next_break - 1e-21:
                tel.count("transient.breakpoint_landings")

        # Controller update.  ``h`` is the step the controller *wants*;
        # ``h_cap`` is what the breakpoint/max_step clamp allowed this
        # attempt, and ``h_try`` what was actually accepted.  Only a
        # shrink during the attempt (Newton failure, dv limit) pulls
        # the controller down — a step that was merely clamped to land
        # on a breakpoint must not reset the working step to the
        # sliver, which previously forced a 1.4x/step regrowth climb
        # after every late breakpoint.
        if h_try < h_cap:
            h = h_try
        elif iterations <= options.easy_iterations:
            h = min(max(h, h_try) * options.growth, options.max_step)

    if tel is not None:
        tel.count("transient.simulations")
        tel.add_time("transient.wall_s", time.perf_counter() - wall_start)
        tel.event(
            "transient.complete",
            level="debug",
            t_stop=t_stop,
            points=len(times),
        )
    return TransientResult(circuit, np.array(times), np.array(states))
