"""Modified nodal analysis: precompiled residual and Jacobian assembly.

Unknown vector layout: ``x = [node voltages | voltage-source branch
currents]``.  The residual is Kirchhoff's current law at every node
(current *out* of the node positive) plus the source branch equations
``v_a - v_b - V(t) = 0``.

Assembly is the innermost loop of every analysis — thousands of Newton
iterations per WL_crit bisection, millions per Monte-Carlo campaign —
so :class:`MnaSystem` *precompiles* the netlist at construction:

* linear elements (resistors, voltage-source incidence) are folded
  into one constant matrix copied into the Jacobian buffer per call,
  and their residual contribution is a single mat-vec;
* transistors are flattened into index/sign/kind arrays so the whole
  nonlinear stamp is a handful of vectorized gathers, one batched
  device-model call per distinct model, and two ``np.add.at``
  scatter-adds (residual and flat Jacobian);
* capacitors keep their vectorized charge evaluation and get
  precomputed scatter index arrays;
* ``f`` and the dense Jacobian live in preallocated buffers — the hot
  path allocates nothing proportional to ``size**2``.

``assemble`` returns defensive copies by default so external callers
(AC analysis, finite-difference tests) keep snapshot semantics; the
Newton solver opts into the shared Jacobian buffer with ``copy=False``
and into residual-only evaluation (line searches) with
:meth:`MnaSystem.assemble_residual`.

The pre-optimization loop-based assembler is retained verbatim in
:mod:`repro.circuit.mna_reference`; an equivalence test pins this
implementation to it at ~1e-12 on randomized circuits.

Topology is snapshotted at construction: swapping a waveform on an
existing source (as ``dc_sweep`` does) is picked up per call, and
adding/removing elements triggers an automatic recompile via a cheap
element-count guard, but rewiring an existing element to different
nodes requires a fresh :class:`MnaSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.elements import GROUND
from repro.circuit.netlist import Circuit
from repro.devices.charges import LinearCharge, MirroredCharge, SmoothStepCharge

__all__ = ["VoltageClamp", "TransientState", "MnaSystem"]


@dataclass(frozen=True)
class VoltageClamp:
    """A Norton clamp pinning a node near a target voltage.

    Used to enforce initial conditions on bistable storage nodes for
    the t = 0 operating point; released for t > 0.
    """

    node: int
    target: float
    conductance: float = 1e3


@dataclass
class TransientState:
    """Companion-model state for one accepted time point.

    With ``method = "trapezoidal"`` the previous capacitor currents
    enter the companion model; backward Euler ignores them.
    """

    timestep: float
    capacitor_charges: np.ndarray
    """Charge on each capacitor (aligned with circuit.capacitors)."""

    capacitor_currents: np.ndarray | None = None
    """Capacitor currents at the previous point (trapezoidal only)."""

    method: str = "backward_euler"


class _TransistorGroup:
    """Transistors sharing one device model, evaluated in one batch."""

    def __init__(self, model, members):
        self.model = model
        self.drain = np.array([t.drain for t in members], dtype=np.intp)
        self.gate = np.array([t.gate for t in members], dtype=np.intp)
        self.source = np.array([t.source for t in members], dtype=np.intp)
        self.width = np.array([t.width_um for t in members])
        self.sign = np.array([1.0 if t.polarity == "n" else -1.0 for t in members])
        self.members = list(members)


class _CapacitorBank:
    """Vectorized evaluation of all capacitors in a circuit.

    Linear and logistic-step charge functions (the two shapes the device
    models produce, plus their p-polarity mirrors) are reduced to
    parameter arrays so one assembly evaluates every capacitor with a
    handful of numpy expressions.  Unrecognized charge functions fall
    back to a per-element loop.
    """

    def __init__(self, circuit: Circuit):
        self.a = np.array([c.a for c in circuit.capacitors], dtype=np.intp)
        self.b = np.array([c.b for c in circuit.capacitors], dtype=np.intp)
        n = len(circuit.capacitors)
        self.scale = np.array([c.scale for c in circuit.capacitors])
        self.kind = np.zeros(n, dtype=np.intp)  # 0 linear, 1 step, 2 other
        self.c_lin = np.zeros(n)
        self.c_low = np.zeros(n)
        self.c_high = np.zeros(n)
        self.v_step = np.zeros(n)
        self.width = np.ones(n)
        self.mirror = np.ones(n)
        self.other: list[tuple[int, object]] = []

        for k, cap in enumerate(circuit.capacitors):
            charge = cap.charge
            mirror = 1.0
            if isinstance(charge, MirroredCharge):
                mirror = -1.0
                charge = charge.reference
            if isinstance(charge, LinearCharge):
                self.c_lin[k] = charge.capacitance_farads
            elif isinstance(charge, SmoothStepCharge):
                self.kind[k] = 1
                self.c_low[k] = charge.c_low
                self.c_high[k] = charge.c_high
                self.v_step[k] = charge.v_step
                self.width[k] = charge.width
                self.mirror[k] = mirror
            else:
                self.kind[k] = 2
                self.other.append((k, cap.charge))
        self._all_linear = bool(np.all(self.kind == 0))
        self._scaled_lin = self.scale * self.c_lin

    def __len__(self) -> int:
        return len(self.a)

    def charges_and_caps(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Charge and capacitance for each element at branch voltages v."""
        if self._all_linear:
            # Constant capacitances need none of the logistic machinery.
            return self._scaled_lin * v, self._scaled_lin
        vm = self.mirror * v
        x = np.clip((vm - self.v_step) / self.width, -200.0, 200.0)
        softplus = self.width * np.logaddexp(0.0, x)
        sigmoid = 1.0 / (1.0 + np.exp(-x))
        q_step = self.mirror * (self.c_low * vm + (self.c_high - self.c_low) * softplus)
        c_step = self.c_low + (self.c_high - self.c_low) * sigmoid

        step = self.kind == 1
        q = np.where(step, q_step, self.c_lin * v)
        c = np.where(step, c_step, self.c_lin)
        for k, charge in self.other:
            q[k] = float(np.asarray(charge.charge(v[k])))
            c[k] = float(np.asarray(charge.capacitance(v[k])))
        return self.scale * q, self.scale * c


def _concat_intp(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(parts).astype(np.intp)


class MnaSystem:
    """Assembler bound to one circuit, with precompiled element stamps."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._compile()

    # -- precompilation --------------------------------------------------------

    def _topology_key(self) -> tuple:
        c = self.circuit
        return (
            c.node_count,
            len(c.resistors),
            len(c.capacitors),
            len(c.voltage_sources),
            len(c.current_sources),
            len(c.transistors),
        )

    def _compile(self) -> None:
        circuit = self.circuit
        self.n_nodes = circuit.node_count
        self.n_branches = len(circuit.voltage_sources)
        self.size = self.n_nodes + self.n_branches
        self._topology = self._topology_key()
        n, size = self.n_nodes, self.size

        # Scratch buffers reused across assemblies.
        self._f = np.zeros(size)
        self._jac = np.zeros((size, size))
        self._jac_flat = self._jac.reshape(-1)
        self._xg = np.zeros(n + 1)  # ground aliased to the extra slot
        self._vs_values = np.zeros(self.n_branches)
        self._is_values = np.zeros(len(circuit.current_sources))

        # Constant linear stamp: resistor conductances plus voltage-source
        # incidence.  Both the Jacobian contribution (copied in wholesale)
        # and the x-linear residual contribution (one mat-vec) come from
        # this single matrix.
        lin = np.zeros((size, size))
        for r in circuit.resistors:
            g = 1.0 / r.resistance
            for node, sign in ((r.a, 1.0), (r.b, -1.0)):
                if node == GROUND:
                    continue
                if r.a != GROUND:
                    lin[node, r.a] += sign * g
                if r.b != GROUND:
                    lin[node, r.b] -= sign * g
        for m, src in enumerate(circuit.voltage_sources):
            row = n + m
            if src.a != GROUND:
                lin[src.a, row] += 1.0
                lin[row, src.a] += 1.0
            if src.b != GROUND:
                lin[src.b, row] -= 1.0
                lin[row, src.b] -= 1.0
        self._lin = lin
        self._diag_flat = np.arange(n, dtype=np.intp) * (size + 1)

        # Current sources: static scatter targets, per-call waveform values.
        is_a = np.array([s.a for s in circuit.current_sources], dtype=np.intp)
        is_b = np.array([s.b for s in circuit.current_sources], dtype=np.intp)
        members = np.arange(len(circuit.current_sources), dtype=np.intp)
        self._is_idx = _concat_intp([is_a[is_a != GROUND], is_b[is_b != GROUND]])
        self._is_sign = np.concatenate(
            [np.ones(int(np.sum(is_a != GROUND))), -np.ones(int(np.sum(is_b != GROUND)))]
        )
        self._is_member = _concat_intp([members[is_a != GROUND], members[is_b != GROUND]])

        self._groups = self._group_transistors(circuit)
        self._compile_transistors()
        self._caps = _CapacitorBank(circuit)
        self._compile_capacitors()
        self._clamp_cache: tuple | None = None

        # Last-point evaluation caches.  Newton's accepted line-search
        # residual and the next iteration's Jacobian re-stamp hit the
        # *same* x, as do the post-solve charge/current queries of the
        # transient integrator — the device models and charge functions
        # are pure, so those repeated evaluations are served from the
        # previous result for the cost of an array compare.
        self._t_x = np.full(self.n_nodes, np.nan)
        self._t_valid = False
        self._c_v = np.empty(0)
        self._c_q = np.empty(0)
        self._c_c = np.empty(0)
        self._c_valid = False
        # Source waveforms are functions of t alone, and every Newton
        # iteration of one solve shares the same t; cache the sampled
        # values keyed on (t, waveform identities) so waveform swaps on
        # existing sources (the dc_sweep idiom) still invalidate.
        self._vs_t: float | None = None
        self._vs_waves: list = [None] * self.n_branches
        self._is_t: float | None = None
        self._is_waves: list = [None] * len(circuit.current_sources)

    def invalidate_caches(self) -> None:
        """Recompile the stamps and drop every last-point cache.

        The per-call guards catch waveform swaps and element
        addition/removal, and the last-point caches are keyed on the
        solution vector — but mutating a reused system's devices
        *in place* (swapping a transistor's model or a capacitor's
        charge function, resizing a width: the corners/variation reuse
        idiom) changes the answer at the *same* x, which no key can
        see.  Call this after any such mutation; the next assembly
        evaluates everything fresh.
        """
        self._compile()

    @staticmethod
    def _group_transistors(circuit: Circuit) -> list[_TransistorGroup]:
        by_model: dict[int, list] = {}
        models: dict[int, object] = {}
        for t in circuit.transistors:
            key = id(t.model)
            by_model.setdefault(key, []).append(t)
            models[key] = t.model
        return [_TransistorGroup(models[k], v) for k, v in by_model.items()]

    def _compile_transistors(self) -> None:
        """Flatten every transistor into gather/scatter index arrays.

        Per assembly the only Python-level work left is one
        ``evaluate_density`` call per distinct model; stamping is two
        ``np.add.at`` calls over these precomputed arrays.
        """
        n = self.n_nodes
        size = self.size
        n_t = sum(len(g.members) for g in self._groups)
        self._t_count = n_t
        self._t_id = np.zeros(n_t)
        self._t_gm = np.zeros(n_t)
        self._t_gds = np.zeros(n_t)
        self._t_coef = np.zeros((3, n_t))  # rows: gds, gm, gm + gds

        # (model, slice, sign, width, drain/gate/source gather indices)
        self._t_groups: list[tuple] = []
        start = 0
        drains: list[int] = []
        gates: list[int] = []
        sources: list[int] = []
        for grp in self._groups:
            count = len(grp.members)
            sl = slice(start, start + count)
            # GROUND (-1) indexes the zeroed extra slot of the xg buffer.
            d = np.where(grp.drain == GROUND, n, grp.drain).astype(np.intp)
            g = np.where(grp.gate == GROUND, n, grp.gate).astype(np.intp)
            s = np.where(grp.source == GROUND, n, grp.source).astype(np.intp)
            self._t_groups.append((grp.model, sl, grp.sign, grp.width, d, g, s))
            drains.extend(int(v) for v in grp.drain)
            gates.extend(int(v) for v in grp.gate)
            sources.extend(int(v) for v in grp.source)
            start += count

        f_idx: list[int] = []
        f_sign: list[float] = []
        f_member: list[int] = []
        j_flat: list[int] = []
        j_sign: list[float] = []
        j_kind: list[int] = []
        j_member: list[int] = []
        KIND_GDS, KIND_GM, KIND_SUM = 0, 1, 2
        for k in range(n_t):
            d, g, s = drains[k], gates[k], sources[k]
            for node, node_sign in ((d, 1.0), (s, -1.0)):
                if node == GROUND:
                    continue
                f_idx.append(node)
                f_sign.append(node_sign)
                f_member.append(k)
                for col, kind, col_sign in (
                    (d, KIND_GDS, 1.0),
                    (g, KIND_GM, 1.0),
                    (s, KIND_SUM, -1.0),
                ):
                    if col == GROUND:
                        continue
                    j_flat.append(node * size + col)
                    j_sign.append(node_sign * col_sign)
                    j_kind.append(kind)
                    j_member.append(k)
        self._tf_idx = np.array(f_idx, dtype=np.intp)
        self._tf_sign = np.array(f_sign)
        self._tf_member = np.array(f_member, dtype=np.intp)
        self._tj_flat = np.array(j_flat, dtype=np.intp)
        self._tj_sign = np.array(j_sign)
        self._tj_kind = np.array(j_kind, dtype=np.intp)
        self._tj_member = np.array(j_member, dtype=np.intp)

    def _compile_capacitors(self) -> None:
        a, b = self._caps.a, self._caps.b
        size = self.size
        members = np.arange(len(self._caps), dtype=np.intp)
        a_ok = a != GROUND
        b_ok = b != GROUND
        both = a_ok & b_ok
        self._cf_idx = _concat_intp([a[a_ok], b[b_ok]])
        self._cf_sign = np.concatenate(
            [np.ones(int(np.sum(a_ok))), -np.ones(int(np.sum(b_ok)))]
        )
        self._cf_member = _concat_intp([members[a_ok], members[b_ok]])
        self._cj_flat = _concat_intp(
            [
                a[a_ok] * size + a[a_ok],
                b[b_ok] * size + b[b_ok],
                a[both] * size + b[both],
                b[both] * size + a[both],
            ]
        )
        n_both = int(np.sum(both))
        self._cj_sign = np.concatenate(
            [
                np.ones(int(np.sum(a_ok))),
                np.ones(int(np.sum(b_ok))),
                -np.ones(n_both),
                -np.ones(n_both),
            ]
        )
        self._cj_member = _concat_intp(
            [members[a_ok], members[b_ok], members[both], members[both]]
        )

    def _clamp_arrays(self, clamps: tuple[VoltageClamp, ...]):
        cached = self._clamp_cache
        if cached is not None and cached[0] == clamps:
            return cached[1], cached[2], cached[3]
        live = [cl for cl in clamps if cl.node != GROUND]
        nodes = np.array([cl.node for cl in live], dtype=np.intp)
        conductance = np.array([cl.conductance for cl in live])
        target = np.array([cl.target for cl in live])
        self._clamp_cache = (clamps, nodes, conductance, target)
        return nodes, conductance, target

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _voltage(x: np.ndarray, node: int) -> float:
        return 0.0 if node == GROUND else x[node]

    def _cap_voltages(self, x: np.ndarray) -> np.ndarray:
        xg = self._xg
        xg[: self.n_nodes] = x[: self.n_nodes]
        return xg[self._caps.a] - xg[self._caps.b]

    def _cap_qc(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Charges and capacitances at ``x``, cached on the branch voltages."""
        v = self._cap_voltages(x)
        if self._c_valid and np.array_equal(v, self._c_v):
            return self._c_q, self._c_c
        q, c = self._caps.charges_and_caps(v)
        self._c_v, self._c_q, self._c_c = v, q, c
        self._c_valid = True
        return q, c

    def capacitor_charges(self, x: np.ndarray) -> np.ndarray:
        """Charge on every capacitor at the given solution vector."""
        if not len(self._caps):
            return np.empty(0)
        q, _ = self._cap_qc(x)
        return q.copy()

    # -- assembly ----------------------------------------------------------------

    def assemble(
        self,
        x: np.ndarray,
        t: float,
        gmin: float = 0.0,
        transient: TransientState | None = None,
        clamps: tuple[VoltageClamp, ...] = (),
        source_scale: float = 1.0,
        copy: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual f(x) and Jacobian J(x) at time ``t``.

        With ``transient`` set, capacitors contribute backward-Euler
        companion currents against the stored previous charges;
        otherwise they are open (DC).  ``source_scale`` scales every
        independent source for source-stepping homotopy.

        The returned residual is always a fresh array.  With
        ``copy=False`` the Jacobian is the assembler's reusable buffer,
        overwritten by the next assembly — the Newton solver's private
        fast path; every other caller gets a defensive copy.
        """
        f, jac = self._assemble(x, t, gmin, transient, clamps, source_scale, True)
        return (f, jac.copy()) if copy else (f, jac)

    def assemble_residual(
        self,
        x: np.ndarray,
        t: float,
        gmin: float = 0.0,
        transient: TransientState | None = None,
        clamps: tuple[VoltageClamp, ...] = (),
        source_scale: float = 1.0,
    ) -> np.ndarray:
        """Residual only — skips every Jacobian store (line searches)."""
        f, _ = self._assemble(x, t, gmin, transient, clamps, source_scale, False)
        return f

    def _assemble(
        self,
        x: np.ndarray,
        t: float,
        gmin: float,
        transient: TransientState | None,
        clamps: tuple[VoltageClamp, ...],
        source_scale: float,
        want_jac: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._topology != self._topology_key():
            self._compile()

        n = self.n_nodes
        f = self._f
        jac = self._jac
        jac_flat = self._jac_flat

        # Linear elements: constant Jacobian block, one mat-vec residual.
        np.matmul(self._lin, x, out=f)
        if want_jac:
            np.copyto(jac, self._lin)

        if gmin > 0.0:
            f[:n] += gmin * x[:n]
            if want_jac:
                jac_flat[self._diag_flat] += gmin

        if clamps:
            nodes, conductance, target = self._clamp_arrays(clamps)
            if nodes.size:
                np.add.at(f, nodes, conductance * (x[nodes] - target))
                if want_jac:
                    np.add.at(jac_flat, nodes * (self.size + 1), conductance)

        # Independent source values at this time point (read from the
        # circuit each call so waveform swaps on existing sources — the
        # dc_sweep idiom — are honoured without recompiling).
        if self.n_branches:
            vs = self._vs_values
            sources = self.circuit.voltage_sources
            waves = self._vs_waves
            if t != self._vs_t or any(
                s.waveform is not w for s, w in zip(sources, waves)
            ):
                for m, src in enumerate(sources):
                    vs[m] = src.waveform.value(t)
                    waves[m] = src.waveform
                self._vs_t = t
            f[n:] -= source_scale * vs
        if self._is_idx.size:
            iv = self._is_values
            sources = self.circuit.current_sources
            waves = self._is_waves
            if t != self._is_t or any(
                s.waveform is not w for s, w in zip(sources, waves)
            ):
                for m, src in enumerate(sources):
                    iv[m] = src.waveform.value(t)
                    waves[m] = src.waveform
                self._is_t = t
            np.add.at(f, self._is_idx, self._is_sign * (source_scale * iv[self._is_member]))

        if self._t_count:
            self._stamp_transistors(x, f, jac_flat, want_jac)
        if transient is not None and len(self._caps):
            self._stamp_capacitors(x, f, jac_flat, transient, want_jac)

        return f.copy(), jac

    def _stamp_transistors(self, x, f, jac_flat, want_jac: bool) -> None:
        i_d, gm_w, gds_w = self._t_id, self._t_gm, self._t_gds
        volts = x[: self.n_nodes]
        if not (self._t_valid and np.array_equal(volts, self._t_x)):
            xg = self._xg
            xg[: self.n_nodes] = volts
            for model, sl, sign, width, d, g, s in self._t_groups:
                vs = xg[s]
                vgs = sign * (xg[g] - vs)
                vds = sign * (xg[d] - vs)
                j, gm, gds = model.evaluate_density(vgs, vds)
                i_d[sl] = sign * width * np.asarray(j)
                gm_w[sl] = width * np.asarray(gm)
                gds_w[sl] = width * np.asarray(gds)
            self._t_x[:] = volts
            self._t_valid = True
        np.add.at(f, self._tf_idx, self._tf_sign * i_d[self._tf_member])
        if want_jac:
            coef = self._t_coef
            coef[0] = gds_w
            coef[1] = gm_w
            np.add(gm_w, gds_w, out=coef[2])
            np.add.at(
                jac_flat,
                self._tj_flat,
                self._tj_sign * coef[self._tj_kind, self._tj_member],
            )

    def capacitor_currents(self, x: np.ndarray, transient: TransientState) -> np.ndarray:
        """Companion-model capacitor currents at the solution ``x``."""
        if not len(self._caps):
            return np.empty(0)
        q, _ = self._cap_qc(x)
        delta = (q - transient.capacitor_charges) / transient.timestep
        if transient.method == "trapezoidal":
            return 2.0 * delta - transient.capacitor_currents
        return delta

    def _stamp_capacitors(self, x, f, jac_flat, transient: TransientState, want_jac: bool) -> None:
        h = transient.timestep
        q, c = self._cap_qc(x)
        if transient.method == "trapezoidal":
            current = 2.0 * (q - transient.capacitor_charges) / h - transient.capacitor_currents
            conductance = 2.0 * c / h
        else:
            current = (q - transient.capacitor_charges) / h
            conductance = c / h
        np.add.at(f, self._cf_idx, self._cf_sign * current[self._cf_member])
        if want_jac:
            np.add.at(
                jac_flat, self._cj_flat, self._cj_sign * conductance[self._cj_member]
            )
