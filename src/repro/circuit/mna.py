"""Modified nodal analysis: residual and Jacobian assembly.

Unknown vector layout: ``x = [node voltages | voltage-source branch
currents]``.  The residual is Kirchhoff's current law at every node
(current *out* of the node positive) plus the source branch equations
``v_a - v_b - V(t) = 0``.

Transistors belonging to the same device model are evaluated in one
vectorized call — with table-interpolated TFET models this is the
difference between the device model dominating the runtime and not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.elements import GROUND
from repro.circuit.netlist import Circuit
from repro.devices.charges import LinearCharge, MirroredCharge, SmoothStepCharge

__all__ = ["VoltageClamp", "TransientState", "MnaSystem"]


@dataclass(frozen=True)
class VoltageClamp:
    """A Norton clamp pinning a node near a target voltage.

    Used to enforce initial conditions on bistable storage nodes for
    the t = 0 operating point; released for t > 0.
    """

    node: int
    target: float
    conductance: float = 1e3


@dataclass
class TransientState:
    """Companion-model state for one accepted time point.

    With ``method = "trapezoidal"`` the previous capacitor currents
    enter the companion model; backward Euler ignores them.
    """

    timestep: float
    capacitor_charges: np.ndarray
    """Charge on each capacitor (aligned with circuit.capacitors)."""

    capacitor_currents: np.ndarray | None = None
    """Capacitor currents at the previous point (trapezoidal only)."""

    method: str = "backward_euler"


class _TransistorGroup:
    """Transistors sharing one device model, evaluated in one batch."""

    def __init__(self, model, members):
        self.model = model
        self.drain = np.array([t.drain for t in members], dtype=np.intp)
        self.gate = np.array([t.gate for t in members], dtype=np.intp)
        self.source = np.array([t.source for t in members], dtype=np.intp)
        self.width = np.array([t.width_um for t in members])
        self.sign = np.array([1.0 if t.polarity == "n" else -1.0 for t in members])
        self.members = list(members)


class _CapacitorBank:
    """Vectorized evaluation of all capacitors in a circuit.

    Linear and logistic-step charge functions (the two shapes the device
    models produce, plus their p-polarity mirrors) are reduced to
    parameter arrays so one assembly evaluates every capacitor with a
    handful of numpy expressions.  Unrecognized charge functions fall
    back to a per-element loop.
    """

    def __init__(self, circuit: Circuit):
        self.a = np.array([c.a for c in circuit.capacitors], dtype=np.intp)
        self.b = np.array([c.b for c in circuit.capacitors], dtype=np.intp)
        n = len(circuit.capacitors)
        self.scale = np.array([c.scale for c in circuit.capacitors])
        self.kind = np.zeros(n, dtype=np.intp)  # 0 linear, 1 step, 2 other
        self.c_lin = np.zeros(n)
        self.c_low = np.zeros(n)
        self.c_high = np.zeros(n)
        self.v_step = np.zeros(n)
        self.width = np.ones(n)
        self.mirror = np.ones(n)
        self.other: list[tuple[int, object]] = []

        for k, cap in enumerate(circuit.capacitors):
            charge = cap.charge
            mirror = 1.0
            if isinstance(charge, MirroredCharge):
                mirror = -1.0
                charge = charge.reference
            if isinstance(charge, LinearCharge):
                self.c_lin[k] = charge.capacitance_farads
            elif isinstance(charge, SmoothStepCharge):
                self.kind[k] = 1
                self.c_low[k] = charge.c_low
                self.c_high[k] = charge.c_high
                self.v_step[k] = charge.v_step
                self.width[k] = charge.width
                self.mirror[k] = mirror
            else:
                self.kind[k] = 2
                self.other.append((k, cap.charge))

    def __len__(self) -> int:
        return len(self.a)

    def charges_and_caps(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Charge and capacitance for each element at branch voltages v."""
        vm = self.mirror * v
        x = np.clip((vm - self.v_step) / self.width, -200.0, 200.0)
        softplus = self.width * np.logaddexp(0.0, x)
        sigmoid = 1.0 / (1.0 + np.exp(-x))
        q_step = self.mirror * (self.c_low * vm + (self.c_high - self.c_low) * softplus)
        c_step = self.c_low + (self.c_high - self.c_low) * sigmoid

        step = self.kind == 1
        q = np.where(step, q_step, self.c_lin * v)
        c = np.where(step, c_step, self.c_lin)
        for k, charge in self.other:
            q[k] = float(np.asarray(charge.charge(v[k])))
            c[k] = float(np.asarray(charge.capacitance(v[k])))
        return self.scale * q, self.scale * c


class MnaSystem:
    """Assembler bound to one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.n_nodes = circuit.node_count
        self.n_branches = len(circuit.voltage_sources)
        self.size = self.n_nodes + self.n_branches
        self._groups = self._group_transistors(circuit)
        self._caps = _CapacitorBank(circuit)

    @staticmethod
    def _group_transistors(circuit: Circuit) -> list[_TransistorGroup]:
        by_model: dict[int, list] = {}
        models: dict[int, object] = {}
        for t in circuit.transistors:
            key = id(t.model)
            by_model.setdefault(key, []).append(t)
            models[key] = t.model
        return [_TransistorGroup(models[k], v) for k, v in by_model.items()]

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _voltage(x: np.ndarray, node: int) -> float:
        return 0.0 if node == GROUND else x[node]

    def _cap_voltages(self, x: np.ndarray) -> np.ndarray:
        xg = np.append(x[: self.n_nodes], 0.0)  # ground aliased to the extra slot
        return xg[self._caps.a] - xg[self._caps.b]

    def capacitor_charges(self, x: np.ndarray) -> np.ndarray:
        """Charge on every capacitor at the given solution vector."""
        if not len(self._caps):
            return np.empty(0)
        q, _ = self._caps.charges_and_caps(self._cap_voltages(x))
        return q

    # -- assembly ----------------------------------------------------------------

    def assemble(
        self,
        x: np.ndarray,
        t: float,
        gmin: float = 0.0,
        transient: TransientState | None = None,
        clamps: tuple[VoltageClamp, ...] = (),
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residual f(x) and Jacobian J(x) at time ``t``.

        With ``transient`` set, capacitors contribute backward-Euler
        companion currents against the stored previous charges;
        otherwise they are open (DC).  ``source_scale`` scales every
        independent source for source-stepping homotopy.
        """
        n = self.n_nodes
        f = np.zeros(self.size)
        jac = np.zeros((self.size, self.size))

        volts = x[:n]

        if gmin > 0.0:
            f[:n] += gmin * volts
            jac[np.arange(n), np.arange(n)] += gmin

        for clamp in clamps:
            if clamp.node == GROUND:
                continue
            f[clamp.node] += clamp.conductance * (volts[clamp.node] - clamp.target)
            jac[clamp.node, clamp.node] += clamp.conductance

        self._stamp_resistors(x, f, jac)
        self._stamp_transistors(x, f, jac)
        self._stamp_current_sources(f, t, source_scale)
        self._stamp_voltage_sources(x, f, jac, t, source_scale)
        if transient is not None:
            self._stamp_capacitors(x, f, jac, transient)
        return f, jac

    def _stamp_resistors(self, x, f, jac) -> None:
        for r in self.circuit.resistors:
            g = 1.0 / r.resistance
            va = self._voltage(x, r.a)
            vb = self._voltage(x, r.b)
            i = g * (va - vb)
            for node, sign in ((r.a, 1.0), (r.b, -1.0)):
                if node == GROUND:
                    continue
                f[node] += sign * i
                if r.a != GROUND:
                    jac[node, r.a] += sign * g
                if r.b != GROUND:
                    jac[node, r.b] -= sign * g

    def _stamp_transistors(self, x, f, jac) -> None:
        xg = np.append(x[: self.n_nodes], 0.0)  # ground aliased to the extra slot
        for grp in self._groups:
            vd = xg[grp.drain]
            vg = xg[grp.gate]
            vs = xg[grp.source]
            vgs = grp.sign * (vg - vs)
            vds = grp.sign * (vd - vs)
            j, gm, gds = grp.model.evaluate_density(vgs, vds)
            i_d = grp.sign * grp.width * np.asarray(j)
            gm_w = grp.width * np.asarray(gm)
            gds_w = grp.width * np.asarray(gds)

            for k in range(len(grp.width)):
                d, g_node, s = int(grp.drain[k]), int(grp.gate[k]), int(grp.source[k])
                for node, sign in ((d, 1.0), (s, -1.0)):
                    if node == GROUND:
                        continue
                    f[node] += sign * i_d[k]
                    if d != GROUND:
                        jac[node, d] += sign * gds_w[k]
                    if g_node != GROUND:
                        jac[node, g_node] += sign * gm_w[k]
                    if s != GROUND:
                        jac[node, s] -= sign * (gm_w[k] + gds_w[k])

    def _stamp_current_sources(self, f, t, source_scale) -> None:
        for src in self.circuit.current_sources:
            value = source_scale * src.waveform.value(t)
            if src.a != GROUND:
                f[src.a] += value
            if src.b != GROUND:
                f[src.b] -= value

    def _stamp_voltage_sources(self, x, f, jac, t, source_scale) -> None:
        n = self.n_nodes
        for m, src in enumerate(self.circuit.voltage_sources):
            row = n + m
            i_branch = x[row]
            va = self._voltage(x, src.a)
            vb = self._voltage(x, src.b)
            f[row] = va - vb - source_scale * src.waveform.value(t)
            if src.a != GROUND:
                f[src.a] += i_branch
                jac[src.a, row] += 1.0
                jac[row, src.a] += 1.0
            if src.b != GROUND:
                f[src.b] -= i_branch
                jac[src.b, row] -= 1.0
                jac[row, src.b] -= 1.0

    def capacitor_currents(self, x: np.ndarray, transient: TransientState) -> np.ndarray:
        """Companion-model capacitor currents at the solution ``x``."""
        if not len(self._caps):
            return np.empty(0)
        q, _ = self._caps.charges_and_caps(self._cap_voltages(x))
        delta = (q - transient.capacitor_charges) / transient.timestep
        if transient.method == "trapezoidal":
            return 2.0 * delta - transient.capacitor_currents
        return delta

    def _stamp_capacitors(self, x, f, jac, transient: TransientState) -> None:
        if not len(self._caps):
            return
        h = transient.timestep
        q, c = self._caps.charges_and_caps(self._cap_voltages(x))
        if transient.method == "trapezoidal":
            current = 2.0 * (q - transient.capacitor_charges) / h - transient.capacitor_currents
            conductance = 2.0 * c / h
        else:
            current = (q - transient.capacitor_charges) / h
            conductance = c / h
        a, b = self._caps.a, self._caps.b
        a_ok = a != GROUND
        b_ok = b != GROUND
        np.add.at(f, a[a_ok], current[a_ok])
        np.add.at(f, b[b_ok], -current[b_ok])
        both = a_ok & b_ok
        np.add.at(jac, (a[a_ok], a[a_ok]), conductance[a_ok])
        np.add.at(jac, (b[b_ok], b[b_ok]), conductance[b_ok])
        np.add.at(jac, (a[both], b[both]), -conductance[both])
        np.add.at(jac, (b[both], a[both]), -conductance[both])
