"""Netlist container: named nodes plus a flat element list.

A :class:`Circuit` is cheap to build and immutable-by-convention once
handed to a solver; cell builders in :mod:`repro.sram` construct a
fresh circuit per simulation, which keeps Monte-Carlo sampling (one
device card per transistor per sample) trivially correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    Resistor,
    Transistor,
    VoltageSource,
)
from repro.circuit.waveforms import Constant, Waveform
from repro.devices.charges import ChargeFunction, LinearCharge

__all__ = ["Circuit"]

_GROUND_NAMES = ("0", "gnd", "GND", "vss!")


@dataclass
class Circuit:
    """A flat netlist with named nodes."""

    title: str = ""
    _node_index: dict[str, int] = field(default_factory=dict)
    resistors: list[Resistor] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)
    voltage_sources: list[VoltageSource] = field(default_factory=list)
    current_sources: list[CurrentSource] = field(default_factory=list)
    transistors: list[Transistor] = field(default_factory=list)

    # -- nodes ---------------------------------------------------------------

    def node(self, name: str) -> int:
        """Index for a named node, creating it on first use."""
        if name in _GROUND_NAMES:
            return GROUND
        if name not in self._node_index:
            self._node_index[name] = len(self._node_index)
        return self._node_index[name]

    @property
    def node_names(self) -> list[str]:
        """Non-ground node names ordered by index."""
        return sorted(self._node_index, key=self._node_index.get)

    @property
    def node_count(self) -> int:
        return len(self._node_index)

    def index_of(self, name: str) -> int:
        """Index of an existing node (ground allowed); raises if unknown."""
        if name in _GROUND_NAMES:
            return GROUND
        if name not in self._node_index:
            raise KeyError(f"unknown node {name!r}")
        return self._node_index[name]

    # -- element helpers -------------------------------------------------------

    def add_resistor(self, a: str, b: str, resistance: float) -> Resistor:
        element = Resistor(self.node(a), self.node(b), resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(
        self,
        a: str,
        b: str,
        charge: ChargeFunction | float,
        scale: float = 1.0,
        name: str = "",
    ) -> Capacitor:
        """Add a capacitor; a bare float is a constant capacitance in farads."""
        if isinstance(charge, (int, float)):
            charge = LinearCharge(float(charge))
        element = Capacitor(self.node(a), self.node(b), charge, scale, name)
        self.capacitors.append(element)
        return element

    def add_voltage_source(
        self, name: str, a: str, b: str, waveform: Waveform | float
    ) -> VoltageSource:
        if isinstance(waveform, (int, float)):
            waveform = Constant(float(waveform))
        element = VoltageSource(self.node(a), self.node(b), waveform, name)
        self.voltage_sources.append(element)
        return element

    def add_current_source(
        self, name: str, a: str, b: str, waveform: Waveform | float
    ) -> CurrentSource:
        if isinstance(waveform, (int, float)):
            waveform = Constant(float(waveform))
        element = CurrentSource(self.node(a), self.node(b), waveform, name)
        self.current_sources.append(element)
        return element

    def add_transistor(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        model,
        polarity: str = "n",
        width_um: float = 0.1,
    ) -> Transistor:
        element = Transistor(
            drain=self.node(drain),
            gate=self.node(gate),
            source=self.node(source),
            model=model,
            polarity=polarity,
            width_um=width_um,
            name=name,
        )
        self.transistors.append(element)
        return element

    # -- introspection ---------------------------------------------------------

    def source_names(self) -> list[str]:
        return [s.name for s in self.voltage_sources]

    def source_index(self, name: str) -> int:
        for i, source in enumerate(self.voltage_sources):
            if source.name == name:
                return i
        raise KeyError(f"unknown voltage source {name!r}")

    def breakpoints(self) -> list[float]:
        """Union of all waveform breakpoints, sorted."""
        points: set[float] = set()
        for source in self.voltage_sources:
            points.update(source.waveform.breakpoints())
        for source in self.current_sources:
            points.update(source.waveform.breakpoints())
        return sorted(points)

    @property
    def unknown_count(self) -> int:
        """Node voltages plus voltage-source branch currents."""
        return self.node_count + len(self.voltage_sources)
