"""Small-signal AC analysis.

Linearizes the circuit at a DC operating point and solves the complex
nodal system ``(G + j omega C) x = b`` over a frequency sweep.  The
conductance matrix G is the operating-point Jacobian the Newton solver
already produces; the capacitance matrix C comes from the same charge
functions the transient integrator uses, so AC and transient are
guaranteed consistent.

This layer is what cell-level loop-gain and Miller-coupling analyses
(see ``repro.experiments.ext_miller_coupling``) build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dcop import SolverOptions, solve_dc
from repro.circuit.elements import GROUND
from repro.circuit.mna import MnaSystem
from repro.circuit.netlist import Circuit
from repro.circuit.results import OperatingPoint

__all__ = ["AcResult", "ac_analysis", "capacitance_matrix"]


@dataclass(frozen=True)
class AcResult:
    """Complex node responses over a frequency sweep."""

    circuit: Circuit
    frequencies: np.ndarray
    responses: np.ndarray
    """Complex array of shape (n_frequencies, n_unknowns)."""

    def transfer(self, node: str) -> np.ndarray:
        """Complex transfer function to the named node."""
        idx = self.circuit.index_of(node)
        if idx < 0:
            return np.zeros_like(self.frequencies, dtype=complex)
        return self.responses[:, idx]

    def magnitude_db(self, node: str) -> np.ndarray:
        """|H| in decibels."""
        return 20.0 * np.log10(np.abs(self.transfer(node)) + 1e-300)

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.transfer(node)))

    def dc_gain(self, node: str) -> float:
        """Gain magnitude at the lowest swept frequency."""
        return float(np.abs(self.transfer(node)[0]))

    def bandwidth_3db(self, node: str) -> float:
        """-3 dB corner frequency (Hz); inf if never reached in sweep."""
        mag = np.abs(self.transfer(node))
        target = mag[0] / np.sqrt(2.0)
        below = np.nonzero(mag <= target)[0]
        if below.size == 0:
            return float("inf")
        k = below[0]
        if k == 0:
            return float(self.frequencies[0])
        # Log-linear interpolation of the crossing.
        f_lo, f_hi = self.frequencies[k - 1], self.frequencies[k]
        m_lo, m_hi = mag[k - 1], mag[k]
        frac = (m_lo - target) / (m_lo - m_hi)
        return float(f_lo * (f_hi / f_lo) ** frac)


def capacitance_matrix(system: MnaSystem, x: np.ndarray) -> np.ndarray:
    """Nodal capacitance matrix at the solution vector ``x``."""
    n = system.size
    c_matrix = np.zeros((n, n))
    if not len(system._caps):
        return c_matrix
    _, caps = system._caps.charges_and_caps(system._cap_voltages(x))
    a, b = system._caps.a, system._caps.b
    a_ok = a != GROUND
    b_ok = b != GROUND
    both = a_ok & b_ok
    np.add.at(c_matrix, (a[a_ok], a[a_ok]), caps[a_ok])
    np.add.at(c_matrix, (b[b_ok], b[b_ok]), caps[b_ok])
    np.add.at(c_matrix, (a[both], b[both]), -caps[both])
    np.add.at(c_matrix, (b[both], a[both]), -caps[both])
    return c_matrix


def ac_analysis(
    circuit: Circuit,
    input_source: str,
    frequencies: np.ndarray,
    operating_point: OperatingPoint | None = None,
    options: SolverOptions | None = None,
) -> AcResult:
    """Sweep a unit AC perturbation on the named voltage source.

    The source keeps its DC level for the operating point; the AC
    stimulus replaces its right-hand-side entry with a unit phasor, so
    ``transfer(node)`` is the small-signal gain from that source to the
    node.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.ndim != 1 or frequencies.size == 0:
        raise ValueError("frequencies must be a non-empty 1-D array")
    if np.any(frequencies <= 0.0):
        raise ValueError("frequencies must be positive")

    options = options or SolverOptions()
    op = operating_point or solve_dc(circuit, options=options)
    system = MnaSystem(circuit)

    # G is the DC Jacobian at the operating point (gmin included so the
    # matrix stays regular for floating nodes, matching the DC solve).
    _, g_matrix = system.assemble(op.x, t=0.0, gmin=options.gmin)
    c_matrix = capacitance_matrix(system, op.x)

    m = circuit.source_index(input_source)
    rhs = np.zeros(system.size, dtype=complex)
    rhs[system.n_nodes + m] = 1.0

    responses = np.empty((frequencies.size, system.size), dtype=complex)
    for k, f in enumerate(frequencies):
        omega = 2.0 * np.pi * f
        responses[k] = np.linalg.solve(g_matrix + 1j * omega * c_matrix, rhs)
    return AcResult(circuit=circuit, frequencies=frequencies, responses=responses)
