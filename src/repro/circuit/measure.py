"""Waveform measurements — the ``.measure`` statements of this simulator.

Standard post-processing of :class:`TransientResult` waveforms: edge
crossings, rise/fall times, propagation delay, overshoot, settling
time, and pulse width.  All functions interpolate linearly between
samples, so measurements are consistent under step-size changes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.results import TransientResult

__all__ = [
    "cross_time",
    "rise_time",
    "fall_time",
    "propagation_delay",
    "overshoot",
    "settling_time",
    "pulse_width",
]


def _crossings(times: np.ndarray, values: np.ndarray, level: float) -> np.ndarray:
    """All interpolated times at which the waveform crosses ``level``."""
    above = values >= level
    flips = np.nonzero(above[1:] != above[:-1])[0]
    if flips.size == 0:
        return np.empty(0)
    v0 = values[flips]
    v1 = values[flips + 1]
    frac = (level - v0) / (v1 - v0)
    return times[flips] + frac * (times[flips + 1] - times[flips])


def cross_time(
    result: TransientResult,
    node: str,
    level: float,
    occurrence: int = 1,
    direction: str = "any",
    after: float = 0.0,
) -> float:
    """Time of the n-th crossing of ``level`` (math.inf if it never happens).

    ``direction`` restricts the edge: "rise", "fall", or "any".
    """
    if occurrence < 1:
        raise ValueError("occurrence counts from 1")
    if direction not in ("rise", "fall", "any"):
        raise ValueError(f"unknown direction {direction!r}")
    v = result.voltage(node)
    t = result.times
    crossings = _crossings(t, v, level)
    crossings = crossings[crossings >= after]
    if direction != "any" and crossings.size:
        keep = []
        for tc in crossings:
            slope = np.interp(tc + 1e-15, t, v) - np.interp(tc - 1e-15, t, v)
            before = np.interp(max(tc - 1e-13, t[0]), t, v)
            after_v = np.interp(min(tc + 1e-13, t[-1]), t, v)
            rising = after_v > before
            if (direction == "rise") == rising:
                keep.append(tc)
        crossings = np.array(keep)
    if crossings.size < occurrence:
        return math.inf
    return float(crossings[occurrence - 1])


def _edge_time(result, node, low_level, high_level, after, rising: bool) -> float:
    first, second = (low_level, high_level) if rising else (high_level, low_level)
    direction = "rise" if rising else "fall"
    t1 = cross_time(result, node, first, direction=direction, after=after)
    if math.isinf(t1):
        return math.inf
    t2 = cross_time(result, node, second, direction=direction, after=t1)
    if math.isinf(t2):
        return math.inf
    return t2 - t1


def rise_time(
    result: TransientResult,
    node: str,
    low: float,
    high: float,
    fraction: tuple[float, float] = (0.1, 0.9),
    after: float = 0.0,
) -> float:
    """10 %→90 % (by default) rise time between the given rails."""
    span = high - low
    return _edge_time(
        result, node, low + fraction[0] * span, low + fraction[1] * span, after, True
    )


def fall_time(
    result: TransientResult,
    node: str,
    low: float,
    high: float,
    fraction: tuple[float, float] = (0.1, 0.9),
    after: float = 0.0,
) -> float:
    """90 %→10 % (by default) fall time between the given rails."""
    span = high - low
    return _edge_time(
        result, node, low + fraction[0] * span, low + fraction[1] * span, after, False
    )


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    input_level: float,
    output_level: float,
    after: float = 0.0,
) -> float:
    """Delay from the input crossing its level to the output crossing its own."""
    t_in = cross_time(result, input_node, input_level, after=after)
    if math.isinf(t_in):
        return math.inf
    t_out = cross_time(result, output_node, output_level, after=t_in)
    if math.isinf(t_out):
        return math.inf
    return t_out - t_in


def overshoot(
    result: TransientResult, node: str, target: float, after: float = 0.0
) -> float:
    """Peak excursion above a settling target (0 when it never exceeds)."""
    mask = result.times >= after
    peak = float(np.max(result.voltage(node)[mask]))
    return max(peak - target, 0.0)


def settling_time(
    result: TransientResult,
    node: str,
    target: float,
    tolerance: float,
    after: float = 0.0,
) -> float:
    """Time after which the waveform stays within ``target ± tolerance``."""
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    mask = result.times >= after
    t = result.times[mask]
    v = result.voltage(node)[mask]
    outside = np.abs(v - target) > tolerance
    if not np.any(outside):
        return float(t[0]) - after if t.size else math.inf
    last_outside = np.nonzero(outside)[0][-1]
    if last_outside == t.size - 1:
        return math.inf
    return float(t[last_outside + 1]) - after


def pulse_width(
    result: TransientResult, node: str, level: float, after: float = 0.0
) -> float:
    """Width of the first excursion across ``level`` (inf if unclosed)."""
    t1 = cross_time(result, node, level, occurrence=1, after=after)
    if math.isinf(t1):
        return math.inf
    t2 = cross_time(result, node, level, occurrence=1, after=t1 + 1e-15)
    if math.isinf(t2):
        return math.inf
    return t2 - t1
