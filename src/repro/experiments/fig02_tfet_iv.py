"""Fig. 2: I-V characteristics of the calibrated n/pTFET pair.

(a) forward transfer curves at |V_DS| = 1 V — the anchors are
I_on = 1e-4 A/um and I_off = 1e-17 A/um; (b) the nTFET under reverse
bias (drain and source switched): the gate modulates the current at low
|V_DS| but loses control as |V_DS| approaches 1 V, where the p-i-n
diode current rises toward the forward on-current.
"""

from __future__ import annotations

import numpy as np

from repro.devices.library import tfet_device
from repro.experiments.common import ExperimentResult

REVERSE_BIASES = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(vgs_points: int = 21) -> ExperimentResult:
    device = tfet_device()
    vgs = np.linspace(0.0, 1.0, vgs_points)

    header = ["vgs (V)", "nTFET fwd @vds=+1V (A/um)", "pTFET fwd @vds=-1V (A/um)"]
    header += [f"nTFET rev @vds=-{v:g}V (A/um)" for v in REVERSE_BIASES]
    result = ExperimentResult(
        "fig02",
        "TFET I-V: forward transfer and reverse-bias family",
        header,
    )
    forward_n = np.asarray(device.current_density(vgs, 1.0))
    # The pTFET mirrors the nTFET: sweep its gate 0 -> -1 V at vds = -1 V.
    forward_p = -np.asarray(device.current_density(vgs, 1.0))
    reverse = {
        v: np.abs(np.asarray(device.current_density(vgs, -v))) for v in REVERSE_BIASES
    }
    for k, vg in enumerate(vgs):
        row = [float(vg), float(forward_n[k]), float(forward_p[k])]
        row += [float(reverse[v][k]) for v in REVERSE_BIASES]
        result.add_row(*row)

    on = float(forward_n[-1])
    off = float(forward_n[0])
    gate_span_high = float(reverse[1.0][-1] / reverse[1.0][0])
    gate_span_low = float(reverse[0.1][-1] / reverse[0.1][0])
    result.notes.append(f"I_on = {on:.2e} A/um, I_off = {off:.2e} A/um (anchors 1e-4 / 1e-17)")
    result.notes.append(
        f"reverse gate control: x{gate_span_low:.1e} at |vds|=0.1V vs "
        f"x{gate_span_high:.2f} at |vds|=1V (gate has lost control)"
    )
    return result
