"""Extension: macro area from the compiled device census vs tab_area.

``tab_area`` compares bare cell areas; the macro estimate of
:func:`repro.sram.array.plan_array` scales them by a flat
``periphery_area_overhead`` fraction.  The array compiler knows the
actual periphery devices a row and a column carry (decoder chain,
precharge, sense amp, replica column), so this experiment extrapolates
the macro area from the compiled census through the same lambda-rule
area model and validates the flat-fraction shortcut against it.

Documented tolerance: at the reference geometry (>= 64 rows) the two
macro areas agree within ``AREA_TOLERANCE`` (measured ratio 0.94 at
64x32 for the proposed cell).  Tiny arrays are excluded by design —
with a handful of rows the fixed periphery dominates and the flat
fraction undershoots (ratio 1.7 at 8x4); the note records the measured
behaviour instead of gating it.
"""

from __future__ import annotations

from repro.analysis.area import cell_area_um2
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import cmos_cell, proposed_cell
from repro.sram.array import ArrayGeometry, plan_array

DEFAULT_ROWS = 64
DEFAULT_COLUMNS = 32

AREA_TOLERANCE = 0.15
"""Census/analytic macro-area ratio within [1 - tol, 1 + tol] at >= 64 rows."""


def run(rows=DEFAULT_ROWS, columns=DEFAULT_COLUMNS, vdd=0.8) -> ExperimentResult:
    from repro.sram.compiler import compile_array
    from repro.sram.compiler.census import census_macro_area

    result = ExperimentResult(
        "ext_array_area",
        "Macro area: compiled device census vs flat overhead fraction",
        [
            "design",
            "rows",
            "cols",
            "cell (um2)",
            "analytic macro (um2)",
            "census macro (um2)",
            "ratio",
            "periphery (um2)",
        ],
    )
    geometry = ArrayGeometry(rows=rows, columns=columns)
    gated = rows >= 64
    all_ok = True
    for name, cell in (("proposed", proposed_cell()), ("cmos", cmos_cell())):
        estimate = plan_array(cell, geometry, vdd)
        compiled = compile_array(cell, geometry, vdd, scenario="read")
        areas = census_macro_area(cell, geometry, compiled.census)
        ratio = areas["total_um2"] / estimate.area_um2
        if gated:
            all_ok &= abs(ratio - 1.0) <= AREA_TOLERANCE
        periphery = (
            areas["row_periphery_um2"]
            + areas["column_periphery_um2"]
            + areas["shared_um2"]
            + areas["control_io_um2"]
        )
        result.add_row(
            name, rows, columns, cell_area_um2(cell),
            estimate.area_um2, areas["total_um2"], ratio, periphery,
        )
    if gated:
        result.notes.append(
            f"census within +/-{AREA_TOLERANCE:.0%} of the flat-fraction "
            f"macro estimate ({'pass' if all_ok else 'FAIL'})"
        )
    else:
        result.notes.append(
            f"{rows} rows < 64: fixed periphery dominates tiny arrays "
            "(measured ratio 1.7 at 8x4), so the tolerance gate applies "
            "only at the reference geometry"
        )
    result.notes.append(
        "census counts compiled devices per row/column; control/IO enters "
        "as a documented fraction of the cell array "
        "(repro.sram.compiler.census.CONTROL_IO_AREA_FRACTION)"
    )
    return result
