"""Extension: compiled-array read path vs the analytic fig11 model.

Fig. 11 reports single-cell delays; the array compiler
(:mod:`repro.sram.compiler`) re-derives the read access time from a
*composed* critical path — distributed bitline RC, real decode chain,
explicit neighbours, replica-timed sense amp — and this experiment
validates the two sources against each other on the proposed cell.

Documented tolerances (gated by ``scripts/array_smoke.py`` and the
compiler tests):

* **delay** — the simulated read access (address edge to the
  ``SENSE_THRESHOLD`` bitline split, same event as the analytic
  ``decode_time + read_delay``) stays within ``DELAY_TOLERANCE`` of
  the analytic number.  Measured: ratio 0.88 at the 64x32 reference
  geometry, 0.75 at tiny smoke arrays — the analytic lumped bitline
  charges the whole capacitance before any split shows, while the
  distributed ladder lets the near end split earlier, so simulation
  sits systematically *below* the analytic bound.
* **energy** — the whole-path energy (decoder, precharge, replica,
  sense amp, cell) lands within ``ENERGY_RATIO_BAND`` of the analytic
  *cell-only* number: the analytic model never claimed to cover the
  periphery, so this is an order-of-magnitude plausibility band, not
  an agreement test.  The per-cell pair (``cell E`` column, dedicated
  rail sources vs the rails-only lumped bench) is reported for
  diagnosis but not gated: both are sub-femtojoule *net* integrals of
  cancelling charge flows, and the lumped-vs-distributed topology
  change legitimately moves them by an order of magnitude.

The write and half-select scenarios ride along so every compiled
scenario is exercised from the experiments runner; the half-select row
reports the victim's disturb margin.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult
from repro.experiments.designs import proposed_cell, proposed_read_assist
from repro.sram.array import ArrayGeometry

DEFAULT_ROWS = (16, 64)
DEFAULT_COLUMNS = 32

DELAY_TOLERANCE = 0.40
"""Simulated/analytic read-delay ratio must be within [1 - tol, 1 + tol]."""

ENERGY_RATIO_BAND = (1.0, 120.0)
"""Whole-path simulated energy over analytic cell-only energy."""


def run(rows_list=DEFAULT_ROWS, columns=DEFAULT_COLUMNS, vdd=0.8) -> ExperimentResult:
    from repro.sram.compiler import compare_array, compile_array, measure_array

    cell = proposed_cell()
    assist = proposed_read_assist()
    result = ExperimentResult(
        "ext_array_read",
        "Compiled-array access path vs analytic model (proposed cell)",
        [
            "rows",
            "scenario",
            "unknowns",
            "sparse",
            "analytic (ps)",
            "simulated (ps)",
            "ratio",
            "path E (fJ)",
            "cell E (fJ)",
            "disturb (mV)",
        ],
    )
    delays_ok = True
    energies_ok = True
    for rows in rows_list:
        geometry = ArrayGeometry(rows=rows, columns=columns)
        comp = compare_array(cell, geometry, vdd, assist=assist)
        m = comp.measurement
        delays_ok &= abs(comp.delay_ratio - 1.0) <= DELAY_TOLERANCE
        energies_ok &= ENERGY_RATIO_BAND[0] <= comp.energy_ratio <= ENERGY_RATIO_BAND[1]
        result.add_row(
            rows, "read", m.unknowns, "yes" if m.sparse_engaged else "no",
            1e12 * comp.analytic_access_time,
            1e12 * comp.simulated_access_time,
            comp.delay_ratio,
            1e15 * comp.simulated_energy,
            1e15 * comp.simulated_cell_energy,
            None,
        )
        for scenario in ("write", "half_select"):
            m = measure_array(compile_array(cell, geometry, vdd, scenario=scenario))
            result.add_row(
                rows, scenario, m.unknowns, "yes" if m.sparse_engaged else "no",
                None,
                1e12 * m.access_delay if math.isfinite(m.access_delay) else math.inf,
                None,
                1e15 * m.energy,
                1e15 * m.cell_energy,
                1e3 * m.disturb_margin if math.isfinite(m.disturb_margin) else None,
            )
    result.notes.append(
        f"read delay: simulated within +/-{DELAY_TOLERANCE:.0%} of analytic "
        f"({'pass' if delays_ok else 'FAIL'}); simulation sits below the "
        "analytic bound (distributed bitline splits before the lumped one)"
    )
    result.notes.append(
        "path energy within the documented "
        f"[{ENERGY_RATIO_BAND[0]:g}x, {ENERGY_RATIO_BAND[1]:g}x] band of the "
        f"cell-only analytic energy ({'pass' if energies_ok else 'FAIL'}): "
        "the compiled path includes decoder/precharge/replica/sense-amp "
        "energy the analytic model omits by design"
    )
    result.notes.append(
        "cell E is the accessed cell's dedicated-rail energy — reported for "
        "diagnosis, not gated (sub-fJ net of cancelling flows; "
        "topology-sensitive)"
    )
    return result
