"""Ablation: static (butterfly) vs dynamic (DRNM/WL_crit) stability.

The paper justifies its methodology in Section 3: "In contrast to prior
work based on static read and write margins, this approach captures the
dynamic behavior of read and write operation, and hence is more
accurate."  This ablation quantifies the gap on our cells: the static
read SNM of the write-sized TFET cell is a small fraction of the
dynamic margin, because a transient read disturb that would eventually
flip the cell at DC simply runs out of wordline pulse.
"""

from __future__ import annotations

from repro.analysis.snm import static_noise_margin
from repro.analysis.stability import dynamic_read_noise_margin
from repro.experiments.common import ExperimentResult
from repro.sram import AccessConfig, CellSizing, Cmos6TCell, Tfet6TCell

DEFAULT_BETAS = (0.4, 0.6, 1.0, 1.5)


def run(betas=DEFAULT_BETAS, vdd: float = 0.8, points: int = 25) -> ExperimentResult:
    result = ExperimentResult(
        "abl_static_dynamic",
        f"Static read SNM vs dynamic DRNM at V_DD = {vdd} V",
        [
            "beta",
            "TFET read SNM (mV)",
            "TFET DRNM (mV)",
            "TFET DRNM/SNM",
            "CMOS read SNM (mV)",
            "CMOS DRNM (mV)",
        ],
    )
    for beta in betas:
        sizing = CellSizing().with_beta(beta)
        tfet = Tfet6TCell(sizing, access=AccessConfig.INWARD_P)
        cmos = Cmos6TCell(sizing)
        snm_t = 1e3 * static_noise_margin(tfet, vdd, read_condition=True, points=points)
        drnm_t = 1e3 * dynamic_read_noise_margin(tfet.read_testbench(vdd))
        snm_c = 1e3 * static_noise_margin(cmos, vdd, read_condition=True, points=points)
        drnm_c = 1e3 * dynamic_read_noise_margin(cmos.read_testbench(vdd))
        result.add_row(beta, snm_t, drnm_t, drnm_t / max(snm_t, 1e-9), snm_c, drnm_c)
    result.notes.append(
        "the dynamic margin exceeds the static one by a large factor for "
        "the TFET cell — the paper's justification for DRNM/WL_crit"
    )
    return result
