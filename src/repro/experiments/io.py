"""Persistence for experiment results (JSON and CSV).

Long campaigns (the Monte-Carlo figures) should be run once and kept;
these helpers round-trip :class:`ExperimentResult` through JSON and
export the rows as CSV for external plotting.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from repro.experiments.common import ExperimentResult

__all__ = ["save_json", "load_json", "save_csv"]

_INF_TOKEN = "Infinity"


def _encode_value(value):
    if isinstance(value, float) and math.isinf(value):
        return {"__float__": _INF_TOKEN if value > 0 else "-Infinity"}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__float__" in value:
        return math.inf if value["__float__"] == _INF_TOKEN else -math.inf
    return value


def save_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result to a JSON file; returns the path written."""
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "header": result.header,
        "rows": [[_encode_value(v) for v in row] for row in result.rows],
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_json(path: str | Path) -> ExperimentResult:
    """Read a result previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    for key in ("experiment_id", "title", "header", "rows"):
        if key not in payload:
            raise ValueError(f"result file is missing the {key!r} field")
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        header=list(payload["header"]),
        notes=list(payload.get("notes", [])),
    )
    for row in payload["rows"]:
        result.add_row(*[_decode_value(v) for v in row])
    return result


def save_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write the result rows as CSV (header included)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.header)
        for row in result.rows:
            writer.writerow(["inf" if isinstance(v, float) and math.isinf(v) else v for v in row])
    return path
