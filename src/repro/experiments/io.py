"""Persistence for experiment results (JSON and CSV).

Long campaigns (the Monte-Carlo figures) should be run once and kept;
these helpers round-trip :class:`ExperimentResult` through JSON and
export the rows as CSV for external plotting.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from repro.experiments.common import ExperimentResult

__all__ = ["save_json", "load_json", "save_csv"]

_INF_TOKEN = "Infinity"
_NEG_INF_TOKEN = "-Infinity"
_NAN_TOKEN = "NaN"


def _encode_value(value):
    if isinstance(value, float):
        if math.isinf(value):
            return {"__float__": _INF_TOKEN if value > 0 else _NEG_INF_TOKEN}
        if math.isnan(value):
            return {"__float__": _NAN_TOKEN}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__float__" in value:
        token = value["__float__"]
        if token == _NAN_TOKEN:
            return math.nan
        return math.inf if token == _INF_TOKEN else -math.inf
    return value


def save_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write a result to a JSON file; returns the path written.

    Non-finite floats (diverged or failed-sample metrics) are encoded
    as ``{"__float__": "Infinity" | "-Infinity" | "NaN"}`` objects, so
    the file is strict standard JSON — ``allow_nan=False`` enforces
    that no bare ``Infinity``/``NaN`` token can slip through.
    """
    path = Path(path)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "header": result.header,
        "rows": [[_encode_value(v) for v in row] for row in result.rows],
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, allow_nan=False))
    return path


def load_json(path: str | Path) -> ExperimentResult:
    """Read a result previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    for key in ("experiment_id", "title", "header", "rows"):
        if key not in payload:
            raise ValueError(f"result file is missing the {key!r} field")
    result = ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        header=list(payload["header"]),
        notes=list(payload.get("notes", [])),
    )
    for row in payload["rows"]:
        result.add_row(*[_decode_value(v) for v in row])
    return result


def _csv_value(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
    return value


def save_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write the result rows as CSV (header included; non-finite floats
    become the spreadsheet-friendly ``inf``/``-inf``/``nan`` strings)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.header)
        for row in result.rows:
            writer.writerow([_csv_value(v) for v in row])
    return path
