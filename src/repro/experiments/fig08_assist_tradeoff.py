"""Fig. 8: the WL_crit vs DRNM trade-off across all eight techniques.

Each write-assist technique is swept over beta > 1 (write assisted,
read naturally reliable): the point is (DRNM without assist, WL_crit
with the WA).  Each read-assist technique is swept over beta <= 1
(write naturally reliable, read assisted): the point is (DRNM with the
RA, WL_crit without assist).  The paper's conclusion — reproduced
here — is that **V_GND-lowering RA** owns the lower-right frontier:
large DRNM at small WL_crit.
"""

from __future__ import annotations

import math

from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.experiments.common import ExperimentResult
from repro.sram import READ_ASSISTS, WRITE_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

DEFAULT_WA_BETAS = (1.2, 1.6, 2.0, 2.5)
DEFAULT_RA_BETAS = (0.3, 0.5, 0.7, 0.9)


def run(
    wa_betas=DEFAULT_WA_BETAS,
    ra_betas=DEFAULT_RA_BETAS,
    vdd: float = 0.8,
) -> ExperimentResult:
    result = ExperimentResult(
        "fig08",
        f"WL_crit vs DRNM trade-off for all techniques at V_DD = {vdd} V",
        ["technique", "kind", "beta", "DRNM (mV)", "WLcrit (ps)"],
    )
    search = WlCritSearch(upper_bound=8e-9)

    def cell(beta: float) -> Tfet6TCell:
        return Tfet6TCell(CellSizing().with_beta(beta), access=AccessConfig.INWARD_P)

    for name, assist in WRITE_ASSISTS.items():
        for beta in wa_betas:
            drnm = 1e3 * dynamic_read_noise_margin(cell(beta).read_testbench(vdd))
            wl = 1e12 * critical_wordline_pulse(cell(beta), vdd, assist=assist, search=search)
            result.add_row(name, "WA", beta, drnm, wl)
    for name, assist in READ_ASSISTS.items():
        for beta in ra_betas:
            drnm = 1e3 * dynamic_read_noise_margin(
                cell(beta).read_testbench(vdd, assist=assist)
            )
            wl = 1e12 * critical_wordline_pulse(cell(beta), vdd, search=search)
            result.add_row(name, "RA", beta, drnm, wl)

    best = _frontier_winner(result)
    result.notes.append(f"lower-right frontier winner: {best} (paper: vgnd_lowering RA)")
    return result


def _frontier_winner(result: ExperimentResult) -> str:
    """Technique with the best (high DRNM, low WL_crit) score.

    Scored by DRNM minus a WL_crit penalty on each technique's best
    point; any finite-write point beats an unwritable one.
    """
    best_name, best_score = "none", -math.inf
    for row in result.rows:
        name, _, _, drnm, wl = row
        if math.isinf(wl):
            continue
        score = drnm - 0.15 * wl
        if score > best_score:
            best_name, best_score = name, score
    return best_name
