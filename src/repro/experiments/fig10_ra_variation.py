"""Fig. 10: process-variation impact on the read-assist techniques.

Monte-Carlo over +/-5 % gate-insulator thickness with the cell sized at
the design point beta = 0.6 (write naturally reliable, read assisted).
Paper shape: DRNM is minimally impacted for every RA technique, and the
WL_crit spread of the RA-sized cell is much smaller than the WA case —
the deciding argument for "size for write, assist the read".
"""

from __future__ import annotations

from repro.analysis.montecarlo import MonteCarloStudy
from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.experiments.common import ExperimentResult
from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

DEFAULT_BETA = 0.6
DEFAULT_SAMPLES = 40


def run(
    samples: int = DEFAULT_SAMPLES,
    beta: float = DEFAULT_BETA,
    vdd: float = 0.8,
    seed: int = 10,
) -> ExperimentResult:
    result = ExperimentResult(
        "fig10",
        f"Monte-Carlo DRNM under RA at beta = {beta} ({samples} samples)",
        ["technique", "metric", "mean", "std", "spread (std/mean)", "write failures"],
    )
    sizing = CellSizing().with_beta(beta)

    for name, assist in READ_ASSISTS.items():
        study = MonteCarloStudy(
            cell_factory=lambda d: Tfet6TCell(sizing, AccessConfig.INWARD_P, devices=d),
            metric=lambda c, a=assist: dynamic_read_noise_margin(
                c.read_testbench(vdd, assist=a)
            ),
            metric_name=f"DRNM[{name}]",
        )
        mc = study.run(samples, seed=seed)
        result.add_row(name, "DRNM (mV)", 1e3 * mc.mean(), 1e3 * mc.std(), mc.spread(), 0)

    wl_study = MonteCarloStudy(
        cell_factory=lambda d: Tfet6TCell(sizing, AccessConfig.INWARD_P, devices=d),
        metric=lambda c: critical_wordline_pulse(
            c, vdd, search=WlCritSearch(upper_bound=8e-9)
        ),
        metric_name="WLcrit",
    )
    mc = wl_study.run(samples, seed=seed)
    result.add_row(
        "(no assist)", "WLcrit (ps)", 1e12 * mc.mean(), 1e12 * mc.std(), mc.spread(), mc.failure_count
    )
    result.notes.append(
        "paper shape: DRNM nearly variation-immune; RA-sized WL_crit spread "
        "far below the WA-sized case of fig09"
    )
    return result
