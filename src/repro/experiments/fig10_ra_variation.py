"""Fig. 10: process-variation impact on the read-assist techniques.

Monte-Carlo over +/-5 % gate-insulator thickness with the cell sized at
the design point beta = 0.6 (write naturally reliable, read assisted).
Paper shape: DRNM is minimally impacted for every RA technique, and the
WL_crit spread of the RA-sized cell is much smaller than the WA case —
the deciding argument for "size for write, assist the read".

Runs on :mod:`repro.engine` — see :mod:`repro.experiments.fig09_wa_variation`
for the parallel/checkpoint/resume semantics shared by both figures.
"""

from __future__ import annotations

from repro.engine.mc import McMetricSpec
from repro.experiments.common import ExperimentResult
from repro.experiments.mc_common import run_study
from repro.sram import READ_ASSISTS

DEFAULT_BETA = 0.6
DEFAULT_SAMPLES = 40

WLCRIT_UPPER_BOUND = 8e-9


def run(
    samples: int = DEFAULT_SAMPLES,
    beta: float = DEFAULT_BETA,
    vdd: float = 0.8,
    seed: int = 10,
    jobs: int = 1,
    resume: bool = False,
    checkpoint_dir: str | None = None,
    cache_dir: str | None = None,
    retries: int = 2,
    timeout_s: float | None = None,
    trace_dir: str | None = None,
    trace_id: str | None = None,
    batch_size: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        "fig10",
        f"Monte-Carlo DRNM under RA at beta = {beta} ({samples} samples)",
        ["technique", "metric", "mean", "std", "spread (std/mean)", "write failures"],
    )

    specs = [
        McMetricSpec(
            metric="drnm",
            beta=beta,
            vdd=vdd,
            assist=name,
            metric_name=f"DRNM[{name}]",
        )
        for name in READ_ASSISTS
    ] + [
        McMetricSpec(
            metric="wlcrit",
            beta=beta,
            vdd=vdd,
            wlcrit_upper_bound=WLCRIT_UPPER_BOUND,
            metric_name="WLcrit",
        ),
    ]

    task_failures = 0
    for spec in specs:
        mc = run_study(
            "fig10",
            spec,
            samples,
            seed,
            batch_size=batch_size,
            jobs=jobs,
            resume=resume,
            checkpoint_dir=checkpoint_dir,
            cache_dir=cache_dir,
            retries=retries,
            timeout_s=timeout_s,
            trace_dir=trace_dir,
            trace_id=trace_id,
        )
        task_failures += mc.report.failed_count
        if spec.metric == "drnm":
            result.add_row(
                spec.assist,
                "DRNM (mV)",
                1e3 * mc.mean(),
                1e3 * mc.std(),
                mc.spread(),
                mc.failure_count,
            )
        else:
            result.add_row(
                "(no assist)",
                "WLcrit (ps)",
                1e12 * mc.mean(),
                1e12 * mc.std(),
                mc.spread(),
                mc.failure_count,
            )
    result.notes.append(
        "paper shape: DRNM nearly variation-immune; RA-sized WL_crit spread "
        "far below the WA-sized case of fig09"
    )
    if task_failures:
        result.notes.append(
            f"engine: {task_failures} task(s) failed after retries and were "
            "recorded as nan samples"
        )
    return result
