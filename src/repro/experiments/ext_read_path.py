"""Extension: full read path with an offset-afflicted sense amplifier.

The paper's Fig. 11 read delay stops at a bare bitline-split threshold.
A real macro fires a latch sense amplifier whose input offset sets the
*required* split — so the honest read-path number is the minimum
wordline-to-sense-enable delay that still resolves correctly under a
worst-case offset.  This experiment measures it for the proposed cell
(with its read assist) and the CMOS baseline across V_DD.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.designs import cmos_cell, proposed_cell, proposed_read_assist
from repro.sram.senseamp import SenseAmpSizing, minimum_sense_delay

DEFAULT_VDDS = (0.6, 0.8)
DEFAULT_MISMATCH = 0.04


def run(vdds=DEFAULT_VDDS, mismatch: float = DEFAULT_MISMATCH) -> ExperimentResult:
    result = ExperimentResult(
        "ext_read_path",
        f"Minimum sense delay with a {mismatch:.0%} offset latch",
        [
            "vdd (V)",
            "proposed TFET (ps)",
            "6T CMOS (ps)",
            "TFET/CMOS",
        ],
    )
    sizing = SenseAmpSizing(mismatch=mismatch)
    for vdd in vdds:
        d_tfet = minimum_sense_delay(
            proposed_cell(), vdd, assist=proposed_read_assist(), sizing=sizing,
            upper=8e-9,
        )
        d_cmos = minimum_sense_delay(cmos_cell(), vdd, sizing=sizing, upper=8e-9)
        result.add_row(vdd, 1e12 * d_tfet, 1e12 * d_cmos, d_tfet / d_cmos)
    result.notes.append(
        "the offset requirement widens the TFET/CMOS read gap beyond the "
        "bare 50 mV-split numbers of fig11"
    )
    return result
