"""Extension: TFET Miller coupling onto the storage nodes.

TFETs are notorious for enhanced Miller capacitance — the channel
charge couples predominantly to the drain — and in the 6T cell that
shows up as a transient *boost* of the high storage node above V_DD
when the wordline fires (the node cannot bleed the injected charge
back through the unidirectional pull-up).  The boost strengthens the
pull-down mid-write and is one reason WL_crit is so sensitive to beta.

This experiment measures the peak storage-node excursion beyond the
rails during a write access for the TFET cell and the CMOS baseline,
plus how long the TFET node stays boosted.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.transient import simulate_transient
from repro.experiments.common import ExperimentResult
from repro.sram import AccessConfig, CellSizing, Cmos6TCell, Tfet6TCell

DEFAULT_BETAS = (0.6, 1.0)


def _write_excursion(cell, vdd: float) -> tuple[float, float]:
    """(peak boost above V_DD in volts, time above V_DD + 10 mV)."""
    bench = cell.write_testbench(vdd, 1.5e-9)
    result = simulate_transient(
        bench.circuit,
        bench.window.t_off + 5e-10,
        initial_conditions=bench.initial_conditions,
    )
    mask = result.times >= bench.window.t_on
    q = result.voltage("q")[mask]
    times = result.times[mask]
    boost = float(np.max(q) - vdd)
    above = q > vdd + 0.01
    dwell = float(np.sum(np.diff(times)[above[:-1]])) if np.any(above) else 0.0
    return boost, dwell


def run(betas=DEFAULT_BETAS, vdd: float = 0.8) -> ExperimentResult:
    result = ExperimentResult(
        "ext_miller",
        f"Storage-node Miller boost during write at V_DD = {vdd} V",
        [
            "beta",
            "TFET peak boost (mV)",
            "TFET dwell above rail (ps)",
            "CMOS peak boost (mV)",
            "CMOS dwell above rail (ps)",
        ],
    )
    for beta in betas:
        sizing = CellSizing().with_beta(beta)
        tfet = Tfet6TCell(sizing, access=AccessConfig.INWARD_P)
        cmos = Cmos6TCell(sizing)
        t_boost, t_dwell = _write_excursion(tfet, vdd)
        c_boost, c_dwell = _write_excursion(cmos, vdd)
        result.add_row(beta, 1e3 * t_boost, 1e12 * t_dwell, 1e3 * c_boost, 1e12 * c_dwell)
    result.notes.append(
        "the TFET node stays boosted (the unidirectional pull-up cannot "
        "drain it); the CMOS node is restored within the access"
    )
    return result
