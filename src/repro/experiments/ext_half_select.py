"""Extension: half-selected-cell stability (the paper's caveat).

Section 4.3 names the design's drawback: "lowered DRNM for
half-selected cells due to the small beta" — cells on a selected row
whose columns are not accessed see the wordline with their bitlines
still clamped at V_DD, but do *not* receive the column-gated read
assist.  This experiment measures that row-half-select DRNM with and
without the (segmented) assist, quantifying how much of the margin the
segmented-V_GND architecture the paper cites must recover.
"""

from __future__ import annotations

from repro.analysis.stability import dynamic_read_noise_margin
from repro.circuit.waveforms import Constant
from repro.experiments.common import ExperimentResult
from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Tfet6TCell
from repro.sram.testbench import Testbench

DEFAULT_BETAS = (0.4, 0.6, 0.8)


def _half_select_bench(cell, vdd: float, assist) -> Testbench:
    """A read bench with the bitlines re-clamped at V_DD (half select)."""
    bench = cell.read_testbench(vdd, assist=assist)
    circuit = bench.circuit
    # Replace the floating precharged bitline capacitors by hard clamps:
    # a half-selected column keeps its bitlines at the precharge rail.
    circuit.capacitors = [
        cap for cap in circuit.capacitors if cap.name not in ("cbl", "cblb")
    ]
    circuit.add_voltage_source("bl_clamp", "bl", "0", Constant(vdd))
    circuit.add_voltage_source("blb_clamp", "blb", "0", Constant(vdd))
    return bench


def run(betas=DEFAULT_BETAS, vdd: float = 0.8) -> ExperimentResult:
    result = ExperimentResult(
        "ext_half_select",
        f"Half-selected-cell DRNM at V_DD = {vdd} V",
        [
            "beta",
            "selected DRNM + RA (mV)",
            "half-select DRNM, no RA (mV)",
            "half-select DRNM, segmented RA (mV)",
        ],
    )
    ra = READ_ASSISTS["vgnd_lowering"]
    for beta in betas:
        cell = Tfet6TCell(CellSizing().with_beta(beta), access=AccessConfig.INWARD_P)
        selected = dynamic_read_noise_margin(cell.read_testbench(vdd, assist=ra))
        half_plain = dynamic_read_noise_margin(_half_select_bench(cell, vdd, None))
        half_assisted = dynamic_read_noise_margin(_half_select_bench(cell, vdd, ra))
        result.add_row(beta, 1e3 * selected, 1e3 * half_plain, 1e3 * half_assisted)
    result.notes.append(
        "clamped bitlines make the half-select disturb persistent, so the "
        "unassisted margin drops below the selected case — the segmented "
        "V_GND architecture (Sharifkhani et al.) recovers it"
    )
    return result
