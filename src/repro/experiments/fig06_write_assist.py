"""Fig. 6(e): effectiveness of the four write-assist techniques vs beta.

WL_crit of the 6T inpTFET cell with each WA technique at 30 % of V_DD.
Paper shape: wordline lowering and bitline raising (strengthen the
access transistor) win at low beta but stop working as beta grows;
the rail techniques (reduce inverter strength) survive to larger beta.

Reproduction note: V_DD-lowering WA is structurally handicapped in a
faithful unidirectional TFET cell — the high storage node can only
follow the collapsed rail through the pull-up's reverse conduction,
which Fig. 2(b)-faithful reverse currents make far too slow for
nanosecond pulses — so it reports write failures here.  EXPERIMENTS.md
discusses the deviation.
"""

from __future__ import annotations

from repro.analysis.stability import WlCritSearch, critical_wordline_pulse
from repro.experiments.common import ExperimentResult
from repro.sram import WRITE_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

DEFAULT_BETAS = (1.0, 1.5, 2.0, 2.5, 3.0)
SEARCH_UPPER_BOUND = 8e-9


def run(betas=DEFAULT_BETAS, vdd: float = 0.8) -> ExperimentResult:
    techniques = list(WRITE_ASSISTS)
    result = ExperimentResult(
        "fig06",
        f"WL_crit (ps) with write-assist techniques at V_DD = {vdd} V",
        ["beta", "no assist"] + techniques,
    )
    search = WlCritSearch(upper_bound=SEARCH_UPPER_BOUND)

    def wl_crit(beta: float, assist) -> float:
        cell = Tfet6TCell(CellSizing().with_beta(beta), access=AccessConfig.INWARD_P)
        return 1e12 * critical_wordline_pulse(cell, vdd, assist=assist, search=search)

    for beta in betas:
        row = [beta, wl_crit(beta, None)]
        row += [wl_crit(beta, WRITE_ASSISTS[name]) for name in techniques]
        result.add_row(*row)
    result.notes.append(
        "paper shape: wl_lowering/bl_raising best at low beta, failing by "
        "beta ~ 2.5-3; rail-based assists degrade more slowly"
    )
    return result
