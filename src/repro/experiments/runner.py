"""Experiment registry and command-line runner.

``python -m repro.experiments fig04`` regenerates one paper artifact;
``python -m repro.experiments all`` regenerates everything (slow — the
Monte-Carlo figures run hundreds of transient bisections);
``python -m repro.experiments --list`` prints the registry.

Observability flags: ``--profile`` collects solver telemetry and
writes a run manifest (wall time, Newton/fallback/step statistics,
result checksum) next to the results; ``--trace out.json`` additionally
dumps the structured event trace (suffixed per experiment id when
several experiments run in one invocation); ``--log-level debug``
widens what the trace records; ``--trace-dir DIR`` streams
cross-process span trees (scheduler, workers, runner) into DIR and
merges them into ``DIR/trace.json`` for ``repro trace``.  Instrumented
runs also export ``<id>_metrics.json``/``.prom`` snapshots.  ``repro
diag`` summarizes saved manifests.  ``--verify`` re-checks every accepted solver result
against the retained reference implementations while the experiment
runs (see :mod:`repro.verify`).

Batch-engine flags (sampling experiments such as ``fig09``/``fig10``):
``--samples N`` sets the Monte-Carlo size, ``--jobs J`` fans the
samples across J worker processes (bit-identical to ``--jobs 1``),
``--seed S`` sets the root seed, and ``--resume`` continues an
interrupted run from its JSONL checkpoints under
``<output-dir>/checkpoints/``.  Experiments that do not sample ignore
these flags with a note.

``--char-store DIR`` serves grid points from a pre-built
characterization store (:mod:`repro.char`) where the experiment's
measurement matches a stored entry exactly; missing points fall back
to direct simulation.  Experiments without a servable grid ignore the
flag with a note.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Callable

from repro.experiments import (
    abl_assist_fraction,
    abl_static_vs_dynamic,
    ext_array_area,
    ext_array_read,
    ext_energy_scaling,
    ext_half_select,
    ext_miller_coupling,
    ext_read_path,
    ext_retention,
    fig02_tfet_iv,
    fig04_cell_stability,
    fig06_write_assist,
    fig07_read_assist,
    fig08_assist_tradeoff,
    fig09_wa_variation,
    fig10_ra_variation,
    fig11_delay,
    fig12_margins,
    table_area,
    table_static_power,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.io import save_json
from repro.obs.export import write_metrics
from repro.telemetry import core as telemetry
from repro.telemetry.manifest import build_manifest, manifest_path, write_manifest
from repro.verify import core as verify

__all__ = ["REGISTRY", "run_experiment", "main", "DEFAULT_MANIFEST_DIR"]

DEFAULT_MANIFEST_DIR = "results"
"""Where run manifests land when ``--output-dir`` is not given."""

REGISTRY: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "fig02": (fig02_tfet_iv.run, "TFET forward/reverse I-V characteristics"),
    "fig04": (fig04_cell_stability.run, "DRNM and WL_crit vs beta"),
    "fig06": (fig06_write_assist.run, "write-assist techniques vs beta"),
    "fig07": (fig07_read_assist.run, "read-assist techniques vs beta"),
    "fig08": (fig08_assist_tradeoff.run, "WL_crit vs DRNM trade-off"),
    "fig09": (fig09_wa_variation.run, "Monte-Carlo variation under WA"),
    "fig10": (fig10_ra_variation.run, "Monte-Carlo variation under RA"),
    "fig11": (fig11_delay.run, "write/read delay vs V_DD"),
    "fig12": (fig12_margins.run, "margins vs V_DD"),
    "tab_power": (table_static_power.run, "static power comparison"),
    "tab_area": (table_area.run, "cell area comparison"),
    # Extensions beyond the paper's artifacts:
    "abl_static_dynamic": (
        abl_static_vs_dynamic.run,
        "ablation: static butterfly SNM vs dynamic DRNM",
    ),
    "abl_assist_fraction": (
        abl_assist_fraction.run,
        "ablation: assist strength vs the paper's fixed 30 %",
    ),
    "ext_half_select": (
        ext_half_select.run,
        "extension: half-selected-cell read stability",
    ),
    "ext_miller": (
        ext_miller_coupling.run,
        "extension: TFET Miller boost on the storage nodes",
    ),
    "ext_energy": (
        ext_energy_scaling.run,
        "extension: access energy and standby power vs V_DD",
    ),
    "ext_retention": (
        ext_retention.run,
        "extension: data-retention voltage and standby floor",
    ),
    "ext_read_path": (
        ext_read_path.run,
        "extension: minimum sense delay with an offset latch",
    ),
    "ext_array_read": (
        ext_array_read.run,
        "extension: compiled-array access path vs the analytic fig11 model",
    ),
    "ext_array_area": (
        ext_array_area.run,
        "extension: macro area from the compiled census vs tab_area's model",
    ),
}


def run_experiment(
    experiment_id: str,
    *,
    profile: bool = False,
    trace_path: str | Path | None = None,
    log_level: str | None = None,
    trace_dir: str | Path | None = None,
    output_dir: str | Path | None = None,
    verify_run: bool = False,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by its registry id.

    Telemetry options: ``profile`` collects solver statistics and
    writes a run manifest into ``output_dir`` (default ``results/``);
    ``trace_path`` also dumps the structured event log; ``log_level``
    sets the event threshold (implies collection).  ``output_dir``
    additionally saves the result table as ``<id>.json``.

    ``trace_dir`` turns on the cross-process trace pipeline
    (:mod:`repro.obs`): a run-level trace id is minted here, threaded
    through the engine into every worker for experiments whose ``run``
    takes ``trace_dir``/``trace_id``, and the per-process span sinks are
    merged into ``<trace_dir>/trace.json`` (rendered by ``repro
    trace``).  Any instrumented run additionally exports its metrics
    snapshot as ``<id>_metrics.json`` + ``<id>_metrics.prom`` next to
    the manifest.

    ``verify_run`` executes the whole experiment under a
    :mod:`repro.verify` session: every converged Newton solution,
    transient step, and (periodically) table evaluation is re-checked
    against the retained reference implementations, and the first
    violation raises.  Engine-backed experiments inherit the session
    in their forked workers, so Monte-Carlo samples are audited too —
    a worker-side violation fails its task, though the audit *counts*
    stay in the worker process.

    Remaining keyword arguments (solver knobs, sweeps like
    ``betas=``/``vdd=``) are forwarded verbatim to the experiment's
    ``run`` function.
    """
    if experiment_id not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    run, title = REGISTRY[experiment_id]

    trace_id = None
    if trace_dir is not None:
        trace_id = telemetry.mint_trace_id()
        # Engine-backed experiments thread the context into their
        # workers; experiments without engine plumbing still get the
        # runner-side spans and the merged trace, so no warning here.
        accepted = set(inspect.signature(run).parameters)
        if "trace_dir" in accepted:
            kwargs.setdefault("trace_dir", str(trace_dir))
            kwargs.setdefault("trace_id", trace_id)

    instrument = bool(profile or trace_path or log_level or trace_dir)
    verify_ctx = verify.enabled() if verify_run else nullcontext(None)
    with verify_ctx as ver:
        if not instrument:
            result = run(**kwargs)
        else:
            trace_ctx = (
                telemetry.TraceContext(trace_id=trace_id) if trace_id else None
            )
            with telemetry.enabled(
                log_level=log_level or "info", trace=trace_ctx
            ) as session:
                start = time.perf_counter()
                with session.span(f"experiment.{experiment_id}"):
                    result = run(**kwargs)
                wall = time.perf_counter() - start
                manifest = build_manifest(experiment_id, title, result, session, wall)
                write_manifest(manifest, output_dir or DEFAULT_MANIFEST_DIR)
                if trace_path:
                    session.write_trace(trace_path)
                metrics_dir = Path(output_dir or DEFAULT_MANIFEST_DIR)
                write_metrics(
                    session,
                    metrics_dir / f"{experiment_id}_metrics.json",
                    metrics_dir / f"{experiment_id}_metrics.prom",
                    run=experiment_id,
                    duration_s=wall,
                )
                if trace_dir is not None:
                    _flush_runner_trace(trace_dir, trace_id, session)
    if ver is not None:
        totals = ", ".join(f"{k}={n}" for k, n in sorted(ver.audits.items()))
        # A zero count has two honest explanations: the experiment did
        # no MNA solving in this process, or it fanned the work out to
        # forked pool workers — those inherit the session and enforce
        # violations (a violation fails its task), but their audit
        # counts stay in the worker.  Say so rather than printing a
        # bare zero that reads like verification silently did not run.
        note = (
            "" if ver.audits
            else " [no in-process solver activity; --jobs workers audit"
            " and enforce in their own sessions — use --jobs 1 for"
            " in-session counts]"
        )
        print(
            f"verify: {sum(ver.audits.values())} audits "
            f"({totals or 'none'}), {len(ver.violations)} violations{note}",
            file=sys.stderr,
        )

    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        save_json(result, directory / f"{experiment_id}.json")
    return result


def _flush_runner_trace(trace_dir, trace_id, session) -> None:
    """Stream the runner session's spans into the trace and re-merge.

    The engine already merged after each batch; merging again folds the
    runner's own ``experiment.<id>`` span (and any spans from inline
    solver work outside the engine) into the same ``trace.json``.
    """
    from repro.obs.sink import SpanSink
    from repro.obs.trace import merge_trace

    sink = SpanSink(trace_dir, role="runner", trace_id=trace_id)
    try:
        sink.write_session_spans(session)
    finally:
        sink.close()
    merge_trace(trace_dir)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (%s) or 'all'" % ", ".join(sorted(REGISTRY)),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment registry with descriptions and exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect solver telemetry and write a run manifest",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the structured JSON event trace to PATH (implies telemetry)",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="stream cross-process span trees into DIR and merge them "
        "into DIR/trace.json (rendered by `repro trace`); engine-backed "
        "experiments trace every worker task",
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(telemetry.LEVELS, key=telemetry.LEVELS.get),
        default=None,
        help="event threshold for the trace/event log (implies telemetry)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-check every accepted solver result against the reference "
        "implementations (KCL, charge conservation, table kernels); "
        "the first violation aborts the run",
    )
    parser.add_argument(
        "--output-dir",
        metavar="DIR",
        default=None,
        help="directory for result JSON and run manifests (default: %s)"
        % DEFAULT_MANIFEST_DIR,
    )
    engine_group = parser.add_argument_group(
        "batch engine (experiments that sample, e.g. fig09/fig10)"
    )
    engine_group.add_argument(
        "--samples",
        type=int,
        default=None,
        metavar="N",
        help="Monte-Carlo sample count",
    )
    engine_group.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="root seed; per-sample seeds derive from (seed, index)",
    )
    engine_group.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="J",
        help="worker processes (results are bit-identical at any J)",
    )
    engine_group.add_argument(
        "--resume",
        action="store_true",
        help="resume from the run's JSONL checkpoints instead of recomputing",
    )
    engine_group.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="K",
        help="solve K Monte-Carlo samples per task as one stacked Newton "
        "batch (bit-identical to K=1, several times faster)",
    )
    parser.add_argument(
        "--char-store",
        metavar="DIR",
        default=None,
        help="serve grid points from this characterization store "
        "(see `repro char build`); missing points fall back to simulation",
    )
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(eid) for eid in REGISTRY)
        for experiment_id in sorted(REGISTRY):
            print(f"{experiment_id.ljust(width)}  {REGISTRY[experiment_id][1]}")
        return 0
    if not args.experiment:
        parser.error("an experiment id (or 'all') is required unless --list is given")

    ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    engine_kwargs = _engine_kwargs(args)
    for experiment_id in ids:
        trace_dir = _trace_dir_for(args.trace_dir, experiment_id, multi=len(ids) > 1)
        result = run_experiment(
            experiment_id,
            profile=args.profile,
            trace_path=_trace_path_for(args.trace, experiment_id, multi=len(ids) > 1),
            log_level=args.log_level,
            trace_dir=trace_dir,
            output_dir=args.output_dir,
            verify_run=args.verify,
            **_supported_kwargs(experiment_id, engine_kwargs),
        )
        print(result.format())
        if args.profile or args.trace or args.log_level or args.trace_dir:
            print(
                "manifest: %s"
                % manifest_path(args.output_dir or DEFAULT_MANIFEST_DIR, experiment_id)
            )
        if trace_dir is not None:
            print(f"trace: {Path(trace_dir) / 'trace.json'}")
        print()
    return 0


def _trace_dir_for(
    trace_dir: str | None, experiment_id: str, multi: bool
) -> str | Path | None:
    """Per-experiment trace directory for multi-experiment invocations
    (``all``): each experiment's sinks and merged trace stay separate."""
    if trace_dir is None or not multi:
        return trace_dir
    return Path(trace_dir) / experiment_id


def _trace_path_for(
    trace: str | None, experiment_id: str, multi: bool
) -> str | Path | None:
    """Per-experiment trace path: when several experiments run in one
    invocation (``all``), each trace gets the experiment id suffixed so
    the last experiment cannot clobber the earlier ones."""
    if trace is None or not multi:
        return trace
    path = Path(trace)
    return path.with_name(f"{path.stem}_{experiment_id}{path.suffix or '.json'}")


def _engine_kwargs(args) -> dict:
    """The batch-engine kwargs the user explicitly set on the command line.

    The CLI always checkpoints engine-backed experiments (so a ^C run is
    resumable), placing the JSONL logs under the output directory.
    """
    kwargs = {}
    if args.samples is not None:
        kwargs["samples"] = args.samples
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.jobs is not None:
        kwargs["jobs"] = args.jobs
    if args.batch_size is not None:
        kwargs["batch_size"] = args.batch_size
    if args.resume:
        kwargs["resume"] = True
    if kwargs or args.resume:
        base = Path(args.output_dir or DEFAULT_MANIFEST_DIR)
        kwargs["checkpoint_dir"] = str(base / "checkpoints")
        kwargs["cache_dir"] = str(base / "table_cache")
    if args.char_store is not None:
        kwargs["char_store"] = args.char_store
    return kwargs


def _supported_kwargs(experiment_id: str, kwargs: dict) -> dict:
    """Filter kwargs to the parameters the experiment's run() accepts.

    Warns (stderr) when an explicitly requested flag is dropped, so
    ``fig02 --samples 64`` is visibly a no-op rather than an error that
    would break ``all`` runs.
    """
    if not kwargs:
        return {}
    run, _ = REGISTRY[experiment_id]
    accepted = set(inspect.signature(run).parameters)
    supported = {k: v for k, v in kwargs.items() if k in accepted}
    dropped = [
        k.replace("_", "-")
        for k in ("samples", "seed", "jobs", "resume", "batch_size", "char_store")
        if k in kwargs and k not in accepted
    ]
    if dropped:
        print(
            f"note: {experiment_id} does not take --{', --'.join(dropped)}; ignored",
            file=sys.stderr,
        )
    return supported


if __name__ == "__main__":
    raise SystemExit(main())
