"""Experiment registry and command-line runner.

``python -m repro.experiments fig04`` regenerates one paper artifact;
``python -m repro.experiments all`` regenerates everything (slow — the
Monte-Carlo figures run hundreds of transient bisections).
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.experiments import (
    abl_assist_fraction,
    abl_static_vs_dynamic,
    ext_energy_scaling,
    ext_half_select,
    ext_miller_coupling,
    ext_read_path,
    ext_retention,
    fig02_tfet_iv,
    fig04_cell_stability,
    fig06_write_assist,
    fig07_read_assist,
    fig08_assist_tradeoff,
    fig09_wa_variation,
    fig10_ra_variation,
    fig11_delay,
    fig12_margins,
    table_area,
    table_static_power,
)
from repro.experiments.common import ExperimentResult

__all__ = ["REGISTRY", "run_experiment", "main"]

REGISTRY: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "fig02": (fig02_tfet_iv.run, "TFET forward/reverse I-V characteristics"),
    "fig04": (fig04_cell_stability.run, "DRNM and WL_crit vs beta"),
    "fig06": (fig06_write_assist.run, "write-assist techniques vs beta"),
    "fig07": (fig07_read_assist.run, "read-assist techniques vs beta"),
    "fig08": (fig08_assist_tradeoff.run, "WL_crit vs DRNM trade-off"),
    "fig09": (fig09_wa_variation.run, "Monte-Carlo variation under WA"),
    "fig10": (fig10_ra_variation.run, "Monte-Carlo variation under RA"),
    "fig11": (fig11_delay.run, "write/read delay vs V_DD"),
    "fig12": (fig12_margins.run, "margins vs V_DD"),
    "tab_power": (table_static_power.run, "static power comparison"),
    "tab_area": (table_area.run, "cell area comparison"),
    # Extensions beyond the paper's artifacts:
    "abl_static_dynamic": (
        abl_static_vs_dynamic.run,
        "ablation: static butterfly SNM vs dynamic DRNM",
    ),
    "abl_assist_fraction": (
        abl_assist_fraction.run,
        "ablation: assist strength vs the paper's fixed 30 %",
    ),
    "ext_half_select": (
        ext_half_select.run,
        "extension: half-selected-cell read stability",
    ),
    "ext_miller": (
        ext_miller_coupling.run,
        "extension: TFET Miller boost on the storage nodes",
    ),
    "ext_energy": (
        ext_energy_scaling.run,
        "extension: access energy and standby power vs V_DD",
    ),
    "ext_retention": (
        ext_retention.run,
        "extension: data-retention voltage and standby floor",
    ),
    "ext_read_path": (
        ext_read_path.run,
        "extension: minimum sense delay with an offset latch",
    ),
}


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by its registry id."""
    if experiment_id not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    run, _ = REGISTRY[experiment_id]
    return run(**kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (%s) or 'all'" % ", ".join(sorted(REGISTRY)),
    )
    args = parser.parse_args(argv)

    ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.format())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
