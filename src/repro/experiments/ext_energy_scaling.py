"""Extension: access energy and standby power vs supply voltage.

Completes the paper's power story: Section 5 only compares *static*
power, but the recommended assist techniques carry a dynamic cost
("dynamic power overhead to generate lowered V_GND").  This experiment
sweeps V_DD and reports, for the proposed cell and the CMOS baseline,
the write energy, the (assisted) read energy, and the standby power —
the three numbers a system designer trades against each other.
"""

from __future__ import annotations

from repro.analysis.energy import read_energy, write_energy
from repro.analysis.power import hold_power
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import cmos_cell, proposed_cell, proposed_read_assist

DEFAULT_VDDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def run(vdds=DEFAULT_VDDS) -> ExperimentResult:
    result = ExperimentResult(
        "ext_energy",
        "Access energy (fJ) and standby power (W) vs V_DD",
        [
            "vdd (V)",
            "TFET write E (fJ)",
            "TFET read E w/ RA (fJ)",
            "TFET standby (W)",
            "CMOS write E (fJ)",
            "CMOS standby (W)",
        ],
    )
    ra = proposed_read_assist()
    for vdd in vdds:
        tfet = proposed_cell()
        cmos = cmos_cell()
        result.add_row(
            vdd,
            1e15 * write_energy(tfet, vdd, pulse_width=4e-9),
            1e15 * read_energy(tfet, vdd, assist=ra, duration=4e-9),
            hold_power(tfet, vdd),
            1e15 * write_energy(cmos, vdd, pulse_width=1e-9),
            hold_power(cmos, vdd),
        )
    result.notes.append(
        "the TFET macro's standby advantage survives every V_DD; the "
        "assist's dynamic overhead appears in the read energy column"
    )
    return result
