"""The four SRAM designs compared in the paper's Section 5.

* the **proposed** cell: 6T TFET with inward-pTFET access, sized at the
  paper's beta ~ 0.6 to favour write, read-assisted by V_GND lowering;
* the **6T CMOS** baseline (32 nm PTM-like);
* the **asymmetric 6T TFET** cell (Singh et al.);
* the **7T TFET** cell with a decoupled read port (Kim et al.).
"""

from __future__ import annotations

from repro.sram import (
    READ_ASSISTS,
    AccessConfig,
    AsymTfet6TCell,
    CellSizing,
    Cmos6TCell,
    Tfet6TCell,
    Tfet7TCell,
)
from repro.sram.cell import TfetDeviceSet

__all__ = [
    "PROPOSED_BETA",
    "proposed_cell",
    "proposed_read_assist",
    "cmos_cell",
    "seven_t_cell",
    "asym_cell",
    "comparison_designs",
]

PROPOSED_BETA = 0.6
"""The paper's design point: size for write, assist the read."""

CMOS_BETA = 1.3
"""Conventional 6T CMOS cell ratio."""


def proposed_cell(devices: TfetDeviceSet | None = None) -> Tfet6TCell:
    """The proposed 6T inpTFET cell at beta = 0.6."""
    return Tfet6TCell(
        CellSizing().with_beta(PROPOSED_BETA),
        access=AccessConfig.INWARD_P,
        devices=devices,
    )


def proposed_read_assist():
    """The winning technique of Section 4: V_GND lowering RA."""
    return READ_ASSISTS["vgnd_lowering"]


def cmos_cell() -> Cmos6TCell:
    return Cmos6TCell(CellSizing().with_beta(CMOS_BETA))


def seven_t_cell(devices: TfetDeviceSet | None = None) -> Tfet7TCell:
    return Tfet7TCell(devices=devices)


def asym_cell(devices: TfetDeviceSet | None = None) -> AsymTfet6TCell:
    return AsymTfet6TCell(devices=devices)


def comparison_designs() -> dict[str, object]:
    """All four designs keyed by their display name."""
    return {
        "6T CMOS": cmos_cell(),
        "6T inpTFET + VGND-lowering RA": proposed_cell(),
        "asym 6T TFET": asym_cell(),
        "7T TFET": seven_t_cell(),
    }
