"""Per-figure/table reproduction experiments (see DESIGN.md index)."""
