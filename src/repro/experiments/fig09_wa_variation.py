"""Fig. 9: process-variation impact on the write-assist techniques.

Monte-Carlo over +/-5 % gate-insulator thickness (independent per
transistor) with the cell sized at beta = 2 (write needs assistance).
Paper shape: WL_crit varies strongly for every WA technique, with
wordline lowering suffering outright write failures under variation,
while the DRNM of the same cells is barely affected.

Runs on :mod:`repro.engine`: ``jobs`` parallelizes the samples across
worker processes (sharing one on-disk device-table cache),
``checkpoint_dir`` + ``resume`` make interrupted campaigns restartable,
and the per-sample seed derivation keeps any ``jobs``/``resume``
combination bit-identical to a serial run.
"""

from __future__ import annotations

from repro.engine.mc import McMetricSpec
from repro.experiments.common import ExperimentResult
from repro.experiments.mc_common import run_study

DEFAULT_BETA = 2.0
DEFAULT_SAMPLES = 40

#: Techniques shown in Fig. 9(a)-(c); wordline lowering appears via its
#: failure count (the paper drops its histogram for the same reason).
TECHNIQUES = ("vgnd_raising", "wl_lowering", "bl_raising")

WLCRIT_UPPER_BOUND = 8e-9


def run(
    samples: int = DEFAULT_SAMPLES,
    beta: float = DEFAULT_BETA,
    vdd: float = 0.8,
    seed: int = 9,
    jobs: int = 1,
    resume: bool = False,
    checkpoint_dir: str | None = None,
    cache_dir: str | None = None,
    retries: int = 2,
    timeout_s: float | None = None,
    trace_dir: str | None = None,
    trace_id: str | None = None,
    batch_size: int = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        "fig09",
        f"Monte-Carlo WL_crit under WA at beta = {beta} ({samples} samples)",
        [
            "technique",
            "metric",
            "mean",
            "std",
            "spread (std/mean)",
            "write failures",
        ],
    )

    specs = [
        McMetricSpec(
            metric="wlcrit",
            beta=beta,
            vdd=vdd,
            assist=name,
            wlcrit_upper_bound=WLCRIT_UPPER_BOUND,
            metric_name=f"WLcrit[{name}]",
        )
        for name in TECHNIQUES
    ] + [
        McMetricSpec(metric="drnm", beta=beta, vdd=vdd, metric_name="DRNM"),
    ]

    task_failures = 0
    for spec in specs:
        mc = run_study(
            "fig09",
            spec,
            samples,
            seed,
            batch_size=batch_size,
            jobs=jobs,
            resume=resume,
            checkpoint_dir=checkpoint_dir,
            cache_dir=cache_dir,
            retries=retries,
            timeout_s=timeout_s,
            trace_dir=trace_dir,
            trace_id=trace_id,
        )
        task_failures += mc.report.failed_count
        if spec.metric == "wlcrit":
            result.add_row(
                spec.assist,
                "WLcrit (ps)",
                1e12 * mc.mean(),
                1e12 * mc.std(),
                mc.spread(),
                mc.failure_count,
            )
        else:
            result.add_row(
                "(no assist)",
                "DRNM (mV)",
                1e3 * mc.mean(),
                1e3 * mc.std(),
                mc.spread(),
                mc.failure_count,
            )
    result.notes.append(
        "paper shape: WL_crit spreads widely under variation (wl_lowering "
        "shows outright failures); DRNM is barely affected"
    )
    if task_failures:
        result.notes.append(
            f"engine: {task_failures} task(s) failed after retries and were "
            "recorded as nan samples"
        )
    return result
