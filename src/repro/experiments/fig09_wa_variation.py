"""Fig. 9: process-variation impact on the write-assist techniques.

Monte-Carlo over +/-5 % gate-insulator thickness (independent per
transistor) with the cell sized at beta = 2 (write needs assistance).
Paper shape: WL_crit varies strongly for every WA technique, with
wordline lowering suffering outright write failures under variation,
while the DRNM of the same cells is barely affected.
"""

from __future__ import annotations

from repro.analysis.montecarlo import MonteCarloStudy
from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.experiments.common import ExperimentResult
from repro.sram import WRITE_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

DEFAULT_BETA = 2.0
DEFAULT_SAMPLES = 40

#: Techniques shown in Fig. 9(a)-(c); wordline lowering appears via its
#: failure count (the paper drops its histogram for the same reason).
TECHNIQUES = ("vgnd_raising", "wl_lowering", "bl_raising")


def run(
    samples: int = DEFAULT_SAMPLES,
    beta: float = DEFAULT_BETA,
    vdd: float = 0.8,
    seed: int = 9,
) -> ExperimentResult:
    result = ExperimentResult(
        "fig09",
        f"Monte-Carlo WL_crit under WA at beta = {beta} ({samples} samples)",
        [
            "technique",
            "metric",
            "mean",
            "std",
            "spread (std/mean)",
            "write failures",
        ],
    )
    sizing = CellSizing().with_beta(beta)
    search = WlCritSearch(upper_bound=8e-9)

    for name in TECHNIQUES:
        assist = WRITE_ASSISTS[name]
        study = MonteCarloStudy(
            cell_factory=lambda d: Tfet6TCell(sizing, AccessConfig.INWARD_P, devices=d),
            metric=lambda c, a=assist: critical_wordline_pulse(c, vdd, assist=a, search=search),
            metric_name=f"WLcrit[{name}]",
        )
        mc = study.run(samples, seed=seed)
        result.add_row(
            name, "WLcrit (ps)", 1e12 * mc.mean(), 1e12 * mc.std(), mc.spread(), mc.failure_count
        )

    drnm_study = MonteCarloStudy(
        cell_factory=lambda d: Tfet6TCell(sizing, AccessConfig.INWARD_P, devices=d),
        metric=lambda c: dynamic_read_noise_margin(c.read_testbench(vdd)),
        metric_name="DRNM",
    )
    mc = drnm_study.run(samples, seed=seed)
    result.add_row("(no assist)", "DRNM (mV)", 1e3 * mc.mean(), 1e3 * mc.std(), mc.spread(), 0)
    result.notes.append(
        "paper shape: WL_crit spreads widely under variation (wl_lowering "
        "shows outright failures); DRNM is barely affected"
    )
    return result
