"""Fig. 7(e): effectiveness of the four read-assist techniques vs beta.

DRNM of the 6T inpTFET cell with each RA technique at 30 % of V_DD,
for beta <= 1 (sized so the write is reliable).  Paper shape: the rail
techniques (V_DD raising / V_GND lowering — strengthen the inverter)
win at larger beta; weakening the access transistor (wordline raising /
bitline lowering) gains ground as beta shrinks.
"""

from __future__ import annotations

from repro.analysis.stability import dynamic_read_noise_margin
from repro.experiments.common import ExperimentResult
from repro.sram import READ_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

DEFAULT_BETAS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run(betas=DEFAULT_BETAS, vdd: float = 0.8) -> ExperimentResult:
    techniques = list(READ_ASSISTS)
    result = ExperimentResult(
        "fig07",
        f"DRNM (mV) with read-assist techniques at V_DD = {vdd} V",
        ["beta", "no assist"] + techniques,
    )

    def drnm(beta: float, assist) -> float:
        cell = Tfet6TCell(CellSizing().with_beta(beta), access=AccessConfig.INWARD_P)
        return 1e3 * dynamic_read_noise_margin(cell.read_testbench(vdd, assist=assist))

    for beta in betas:
        row = [beta, drnm(beta, None)]
        row += [drnm(beta, READ_ASSISTS[name]) for name in techniques]
        result.add_row(*row)
    result.notes.append(
        "paper shape: vdd_raising/vgnd_lowering dominate at large beta; "
        "access-weakening techniques close the gap as beta shrinks"
    )
    return result
