"""Fig. 12: WL_crit and DRNM vs V_DD for the compared designs.

The asymmetric cell has no WL_crit column — the paper: "WL_crit for the
asymmetric 6T TFET SRAM cannot be defined since it does not have the
separatrix", which our cell model enforces by refusing external-assist
bisection semantics (its write collapses the cell instead of racing a
separatrix).
"""

from __future__ import annotations

from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import (
    asym_cell,
    cmos_cell,
    proposed_cell,
    proposed_read_assist,
    seven_t_cell,
)

DEFAULT_VDDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def run(vdds=DEFAULT_VDDS, char_store=None) -> ExperimentResult:
    from repro.char.query import metric_reader

    read = metric_reader(char_store)
    result = ExperimentResult(
        "fig12",
        "WL_crit (ps) and DRNM (mV) vs V_DD",
        [
            "vdd (V)",
            "WLcrit CMOS",
            "WLcrit proposed",
            "WLcrit 7T",
            "DRNM CMOS",
            "DRNM proposed+RA",
            "DRNM asym",
            "DRNM 7T",
        ],
    )
    ra = proposed_read_assist()
    # The same 8 ns bisection window the `nominal` characterization
    # spec records wl_crit with, so stored entries serve this figure.
    search = WlCritSearch(upper_bound=8e-9)
    for vdd in vdds:
        result.add_row(
            vdd,
            1e12 * read("wl_crit", "cmos", vdd,
                        lambda: critical_wordline_pulse(cmos_cell(), vdd, search=search)),
            1e12 * read("wl_crit", "proposed", vdd,
                        lambda: critical_wordline_pulse(proposed_cell(), vdd, search=search)),
            1e12 * read("wl_crit", "7t", vdd,
                        lambda: critical_wordline_pulse(seven_t_cell(), vdd, search=search)),
            1e3 * read("drnm", "cmos", vdd,
                       lambda: dynamic_read_noise_margin(cmos_cell().read_testbench(vdd))),
            1e3 * read("drnm", "proposed", vdd,
                       lambda: dynamic_read_noise_margin(
                           proposed_cell().read_testbench(vdd, assist=ra))),
            1e3 * read("drnm", "asym", vdd,
                       lambda: dynamic_read_noise_margin(asym_cell().read_testbench(vdd))),
            1e3 * read("drnm", "7t", vdd,
                       lambda: dynamic_read_noise_margin(seven_t_cell().read_testbench(vdd))),
        )
    result.notes.append(
        "asym WL_crit undefined (no separatrix); paper shape: every TFET "
        "cell above CMOS in WL_crit, proposed smallest among TFET cells"
    )
    return result
