from repro.experiments.runner import main

raise SystemExit(main())
