"""Cell area comparison (Section 5).

The three 6T cells share the minimum transistor count; the 7T's read
port costs the paper's quoted 10-15 % extra area.
"""

from __future__ import annotations

from repro.analysis.area import cell_area_um2
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import asym_cell, cmos_cell, proposed_cell, seven_t_cell


def run() -> ExperimentResult:
    cells = {
        "6T CMOS": cmos_cell(),
        "proposed 6T inpTFET": proposed_cell(),
        "asym 6T TFET": asym_cell(),
        "7T TFET": seven_t_cell(),
    }
    result = ExperimentResult(
        "tab_area",
        "Estimated cell area",
        ["design", "transistors", "area (um^2)", "vs proposed"],
    )
    base = cell_area_um2(cells["proposed 6T inpTFET"])
    for name, cell in cells.items():
        count = 7 if hasattr(cell, "read_buffer_width") else 6
        area = cell_area_um2(cell)
        result.add_row(name, count, area, area / base)
    result.notes.append("paper: the 7T pays an unavoidable 10-15 % area increase")
    return result
