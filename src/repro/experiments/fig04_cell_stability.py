"""Fig. 4: DRNM and WL_crit vs cell ratio for the candidate cells.

Reproduces the Section 3 comparison: 6T TFET with inward nTFET and
inward pTFET access vs the 6T CMOS baseline.  The headline shapes:

* inward nTFET: infinite WL_crit at every beta (unwritable);
* inward pTFET: finite WL_crit only for beta up to ~1, rising steeply;
* CMOS: small, nearly flat WL_crit;
* DRNM grows with beta for every cell, with the TFET cell clearly
  below CMOS at small beta.
"""

from __future__ import annotations

from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.experiments.common import ExperimentResult
from repro.sram import AccessConfig, CellSizing, Cmos6TCell, Tfet6TCell

DEFAULT_BETAS = (0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0)


def run(betas=DEFAULT_BETAS, vdd: float = 0.8, char_store=None) -> ExperimentResult:
    from repro.char.query import metric_reader

    # DRNM is servable from a built `beta_sweep` grid; WL_crit is not —
    # this figure bisects with the default 4 ns window while the store
    # records the wider 8 ns procedure, and the two disagree exactly
    # where the paper's shape lives (pulses declared infinite at 4 ns).
    read = metric_reader(char_store)
    result = ExperimentResult(
        "fig04",
        f"DRNM and WL_crit vs beta at V_DD = {vdd} V",
        [
            "beta",
            "DRNM inpTFET (mV)",
            "DRNM innTFET (mV)",
            "DRNM CMOS (mV)",
            "WLcrit inpTFET (ps)",
            "WLcrit innTFET (ps)",
            "WLcrit CMOS (ps)",
        ],
    )
    search = WlCritSearch()
    for beta in betas:
        sizing = CellSizing().with_beta(beta)
        cell_p = Tfet6TCell(sizing, access=AccessConfig.INWARD_P)
        cell_n = Tfet6TCell(sizing, access=AccessConfig.INWARD_N)
        cell_c = Cmos6TCell(sizing)
        result.add_row(
            beta,
            1e3 * read("drnm", "inward_p", vdd, beta=beta, compute=lambda:
                       dynamic_read_noise_margin(cell_p.read_testbench(vdd))),
            1e3 * read("drnm", "inward_n", vdd, beta=beta, compute=lambda:
                       dynamic_read_noise_margin(cell_n.read_testbench(vdd))),
            1e3 * read("drnm", "cmos", vdd, beta=beta, compute=lambda:
                       dynamic_read_noise_margin(cell_c.read_testbench(vdd))),
            1e12 * critical_wordline_pulse(cell_p, vdd, search=search),
            1e12 * critical_wordline_pulse(cell_n, vdd, search=search),
            1e12 * critical_wordline_pulse(cell_c, vdd, search=search),
        )
    result.notes.append(
        "paper shape: inward nTFET unwritable everywhere; inward pTFET "
        "writable only at small beta; CMOS flat and fast"
    )
    return result
