"""Ablation: how much assist is enough?

The paper fixes every technique at 30 % of V_DD "for the sake of fair
comparison".  This ablation sweeps the fraction for the winning
technique (V_GND-lowering RA) and for the strongest write assist
(V_GND-raising WA at beta = 2), exposing the trade-off the fixed 30 %
hides: read margin and write speed keep improving with the fraction,
but so do the dynamic-power and half-select costs the paper's Section
4.3 cautions about.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.stability import (
    WlCritSearch,
    critical_wordline_pulse,
    dynamic_read_noise_margin,
)
from repro.experiments.common import ExperimentResult
from repro.sram import READ_ASSISTS, WRITE_ASSISTS, AccessConfig, CellSizing, Tfet6TCell

DEFAULT_FRACTIONS = (0.1, 0.2, 0.3, 0.4)
RA_BETA = 0.6
WA_BETA = 2.0


def run(fractions=DEFAULT_FRACTIONS, vdd: float = 0.8) -> ExperimentResult:
    result = ExperimentResult(
        "abl_assist_fraction",
        f"Assist strength sweep at V_DD = {vdd} V",
        [
            "fraction of VDD",
            f"DRNM w/ vgnd_lowering @beta={RA_BETA} (mV)",
            f"WLcrit w/ vgnd_raising @beta={WA_BETA} (ps)",
        ],
    )
    ra_cell = Tfet6TCell(CellSizing().with_beta(RA_BETA), access=AccessConfig.INWARD_P)
    search = WlCritSearch(upper_bound=8e-9)
    for fraction in fractions:
        ra = replace(READ_ASSISTS["vgnd_lowering"], fraction=fraction)
        wa = replace(WRITE_ASSISTS["vgnd_raising"], fraction=fraction)
        drnm = 1e3 * dynamic_read_noise_margin(ra_cell.read_testbench(vdd, assist=ra))
        wa_cell = Tfet6TCell(CellSizing().with_beta(WA_BETA), access=AccessConfig.INWARD_P)
        wl = 1e12 * critical_wordline_pulse(wa_cell, vdd, assist=wa, search=search)
        result.add_row(fraction, drnm, wl)
    result.notes.append("both metrics improve monotonically with assist strength")
    return result
