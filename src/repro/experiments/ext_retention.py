"""Extension: data-retention voltage and minimum standby power.

Bisects the standby supply for each design and reports the retention
voltage plus the standby power at nominal V_DD, at the retention floor,
and the resulting best-case standby saving.  Exposes a non-obvious
limit of TFET SRAM: the tunneling onset voltage puts a floor under the
retention V_DD that MOSFET cells do not have — the TFET's standby
advantage comes entirely from its leakage floor, not from deeper V_DD
scaling.
"""

from __future__ import annotations

from repro.analysis.power import hold_power
from repro.analysis.retention import retention_voltage
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import cmos_cell, proposed_cell

DEFAULT_NOMINAL_VDD = 0.8


def run(nominal_vdd: float = DEFAULT_NOMINAL_VDD, points: int = 21) -> ExperimentResult:
    result = ExperimentResult(
        "ext_retention",
        "Data-retention voltage and standby-power floor",
        [
            "design",
            "retention VDD (V)",
            f"standby @ {nominal_vdd} V (W)",
            "standby @ retention (W)",
            "standby saving",
        ],
    )
    for name, cell in (("proposed TFET", proposed_cell()), ("6T CMOS", cmos_cell())):
        drv = retention_voltage(cell, vdd_max=nominal_vdd, points=points)
        # Leave a conventional 50 mV guard band above the raw DRV.
        standby_vdd = min(drv + 0.05, nominal_vdd)
        p_nom = hold_power(cell, nominal_vdd, average_states=False)
        p_floor = hold_power(cell, standby_vdd, average_states=False)
        result.add_row(name, drv, p_nom, p_floor, p_nom / p_floor)
    result.notes.append(
        "the TFET cell's retention V_DD is *higher* than CMOS (the "
        "tunneling window opens late), yet its absolute standby floor "
        "is still orders of magnitude lower"
    )
    return result
