"""Fig. 11: write and read delay vs V_DD for the four compared designs.

Paper shape: the CMOS cell writes fastest everywhere (bidirectional
access); the proposed cell's read-assist gives it the best TFET read
at low V_DD, with CMOS taking over at high V_DD.

With ``char_store`` pointing at a built characterization store (see
``repro char build``), every delay this figure needs becomes an index
lookup — the measurement windows below are exactly the ``nominal``
spec's policies, so the stored values are the same numbers this module
would simulate.
"""

from __future__ import annotations

from repro.analysis.timing import read_delay, write_delay
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import (
    asym_cell,
    cmos_cell,
    proposed_cell,
    proposed_read_assist,
    seven_t_cell,
)

DEFAULT_VDDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def run(vdds=DEFAULT_VDDS, char_store=None) -> ExperimentResult:
    from repro.char.query import metric_reader

    read = metric_reader(char_store)
    result = ExperimentResult(
        "fig11",
        "Write / read delay (ps) vs V_DD",
        [
            "vdd (V)",
            "write CMOS",
            "write proposed",
            "write asym",
            "write 7T",
            "read CMOS",
            "read proposed",
            "read asym",
            "read 7T",
        ],
    )
    ra = proposed_read_assist()
    for vdd in vdds:
        # TFET drive collapses steeply with V_DD; give the slow corner
        # enough wordline to complete (the paper's Fig. 11 write delays
        # grow past a nanosecond at 0.5 V).
        pulse = 6e-9 if vdd >= 0.6 else 4e-8
        duration = 8e-9 if vdd >= 0.6 else 4e-8
        result.add_row(
            vdd,
            1e12 * read("write_delay", "cmos", vdd,
                        lambda: write_delay(cmos_cell(), vdd)),
            1e12 * read("write_delay", "proposed", vdd,
                        lambda: write_delay(proposed_cell(), vdd, pulse_width=pulse)),
            1e12 * read("write_delay", "asym", vdd,
                        lambda: write_delay(asym_cell(), vdd, pulse_width=pulse)),
            1e12 * read("write_delay", "7t", vdd,
                        lambda: write_delay(seven_t_cell(), vdd, pulse_width=pulse)),
            1e12 * read("read_delay", "cmos", vdd,
                        lambda: read_delay(cmos_cell(), vdd)),
            1e12 * read("read_delay", "proposed", vdd,
                        lambda: read_delay(proposed_cell(), vdd, assist=ra,
                                           duration=duration)),
            1e12 * read("read_delay", "asym", vdd,
                        lambda: read_delay(asym_cell(), vdd, duration=duration)),
            1e12 * read("read_delay", "7t", vdd,
                        lambda: read_delay(seven_t_cell(), vdd, duration=duration)),
        )
    result.notes.append("paper shape: CMOS fastest write at every V_DD")
    return result
