"""Fig. 11: write and read delay vs V_DD for the four compared designs.

Paper shape: the CMOS cell writes fastest everywhere (bidirectional
access); the proposed cell's read-assist gives it the best TFET read
at low V_DD, with CMOS taking over at high V_DD.
"""

from __future__ import annotations

from repro.analysis.timing import read_delay, write_delay
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import (
    asym_cell,
    cmos_cell,
    proposed_cell,
    proposed_read_assist,
    seven_t_cell,
)

DEFAULT_VDDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def run(vdds=DEFAULT_VDDS) -> ExperimentResult:
    result = ExperimentResult(
        "fig11",
        "Write / read delay (ps) vs V_DD",
        [
            "vdd (V)",
            "write CMOS",
            "write proposed",
            "write asym",
            "write 7T",
            "read CMOS",
            "read proposed",
            "read asym",
            "read 7T",
        ],
    )
    ra = proposed_read_assist()
    for vdd in vdds:
        # TFET drive collapses steeply with V_DD; give the slow corner
        # enough wordline to complete (the paper's Fig. 11 write delays
        # grow past a nanosecond at 0.5 V).
        pulse = 6e-9 if vdd >= 0.6 else 4e-8
        duration = 8e-9 if vdd >= 0.6 else 4e-8
        result.add_row(
            vdd,
            1e12 * write_delay(cmos_cell(), vdd),
            1e12 * write_delay(proposed_cell(), vdd, pulse_width=pulse),
            1e12 * write_delay(asym_cell(), vdd, pulse_width=pulse),
            1e12 * write_delay(seven_t_cell(), vdd, pulse_width=pulse),
            1e12 * read_delay(cmos_cell(), vdd),
            1e12 * read_delay(proposed_cell(), vdd, assist=ra, duration=duration),
            1e12 * read_delay(asym_cell(), vdd, duration=duration),
            1e12 * read_delay(seven_t_cell(), vdd, duration=duration),
        )
    result.notes.append("paper shape: CMOS fastest write at every V_DD")
    return result
