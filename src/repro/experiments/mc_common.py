"""Shared engine plumbing for the Monte-Carlo experiments.

Centralizes how ``fig09``/``fig10`` (and the examples) map a metric
spec onto an :class:`~repro.engine.scheduler.EngineConfig`: one
checkpoint file per study (named from the experiment id and metric),
one shared device-table cache per run directory, and a ``run_key``
that pins checkpoints to their study parameters so ``--resume`` can
never silently mix runs.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.engine.mc import McMetricSpec, MonteCarloBatch
from repro.engine.scheduler import EngineConfig

__all__ = [
    "engine_config_for",
    "run_study",
    "DEFAULT_CHECKPOINT_DIR",
    "DEFAULT_CACHE_DIR",
]

DEFAULT_CHECKPOINT_DIR = "results/checkpoints"
DEFAULT_CACHE_DIR = "results/table_cache"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", text).strip("_")


def run_key_for(experiment_id: str, spec: McMetricSpec) -> str:
    """Identity of one study's work (excludes the sample count, so a
    checkpoint can seed a larger rerun of the same study)."""
    return (
        f"{experiment_id}:{spec.metric_name}:metric={spec.metric}"
        f":beta={spec.beta:g}:vdd={spec.vdd:g}:assist={spec.assist}"
    )


def engine_config_for(
    experiment_id: str,
    spec: McMetricSpec,
    seed: int,
    *,
    jobs: int = 1,
    resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    retries: int = 2,
    timeout_s: float | None = None,
    trace_dir: str | Path | None = None,
    trace_id: str | None = None,
) -> EngineConfig:
    """The engine configuration for one experiment study.

    ``checkpoint_dir=None`` disables checkpointing (library callers opt
    in; the CLI runner always passes a directory so interrupted command
    line runs are resumable by default).  ``resume=True`` without a
    checkpoint directory resumes from the default location.

    ``trace_dir`` streams per-task span trees into that directory and
    merges them into a run-level trace (see :mod:`repro.obs`);
    ``trace_id`` keeps every study of one experiment under a single
    trace id.
    """
    if resume and checkpoint_dir is None:
        checkpoint_dir = DEFAULT_CHECKPOINT_DIR
    checkpoint_path = None
    if checkpoint_dir is not None:
        checkpoint_path = (
            Path(checkpoint_dir) / f"{experiment_id}_{_slug(spec.metric_name)}.jsonl"
        )
    if cache_dir is None and jobs > 1:
        cache_dir = DEFAULT_CACHE_DIR
    return EngineConfig(
        jobs=jobs,
        retries=retries,
        timeout_s=timeout_s,
        checkpoint_path=checkpoint_path,
        resume=resume,
        run_key=run_key_for(experiment_id, spec),
        root_seed=seed,
        cache_dir=cache_dir,
        trace_dir=trace_dir,
        trace_id=trace_id,
    )


def run_study(
    experiment_id: str,
    spec: McMetricSpec,
    samples: int,
    seed: int,
    *,
    batch_size: int = 1,
    **engine_kwargs,
):
    """One Monte-Carlo study end to end: config, run, per-sample result.

    The shared loop body of ``fig09``/``fig10`` (and the yield
    example).  ``batch_size > 1`` solves that many samples per task as
    one stacked Newton batch — bit-identical values at any
    ``jobs``/``batch_size`` combination, so the figures' golden
    statistics are independent of how the work was scheduled.
    """
    engine = engine_config_for(experiment_id, spec, seed, **engine_kwargs)
    return MonteCarloBatch(spec).run(
        samples, seed=seed, engine=engine, batch_size=batch_size
    )
