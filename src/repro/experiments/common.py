"""Shared experiment infrastructure: result tables and formatting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "fmt_seconds", "fmt_volts", "fmt_power", "fmt_value"]


def fmt_seconds(value: float) -> str:
    """Picosecond rendering with an explicit infinity (write failure)."""
    if value is None or (isinstance(value, float) and math.isinf(value)):
        return "inf"
    return f"{value * 1e12:.1f} ps"


def fmt_volts(value: float) -> str:
    return f"{value * 1e3:.1f} mV"


def fmt_power(value: float) -> str:
    return f"{value:.3e} W"


def fmt_value(value) -> str:
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value != 0.0 and (abs(value) < 1e-3 or abs(value) >= 1e4):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """One reproduced table or figure, as printable rows."""

    experiment_id: str
    title: str
    header: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.header):
            raise ValueError(
                f"row has {len(values)} values for {len(self.header)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """All values of one named column."""
        idx = self.header.index(name)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Fixed-width text rendering of the table."""
        cells = [[fmt_value(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.header[c]), *(len(r[c]) for r in cells)) if cells else len(self.header[c])
            for c in range(len(self.header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
