"""Static (hold) power comparison — the paper's central selling point.

Claims reproduced:

* outward-access 6T TFET cells burn ~5 orders (0.6 V) to ~9 orders
  (0.8 V) more hold power than inward-access cells (Section 3);
* the proposed cell and the 7T consume essentially the same leakage,
  6-7 orders of magnitude below the 6T CMOS cell (Section 5);
* the asymmetric cell pays ~4 orders at V_DD = 0.5 V for its outward
  access transistor under V_DD-clamped bitlines.
"""

from __future__ import annotations

import math

from repro.analysis.power import hold_power
from repro.experiments.common import ExperimentResult
from repro.experiments.designs import asym_cell, cmos_cell, proposed_cell, seven_t_cell
from repro.sram import AccessConfig, CellSizing, Tfet6TCell

DEFAULT_VDDS = (0.5, 0.6, 0.7, 0.8)


def run(vdds=DEFAULT_VDDS, char_store=None) -> ExperimentResult:
    from repro.char.query import metric_reader

    read = metric_reader(char_store)
    result = ExperimentResult(
        "tab_power",
        "Hold (static) power in watts per cell",
        [
            "vdd (V)",
            "proposed (inward)",
            "outward 6T TFET",
            "asym 6T TFET",
            "7T TFET",
            "6T CMOS",
            "orders: outward/inward",
            "orders: CMOS/proposed",
            "orders: asym/proposed",
        ],
    )
    for vdd in vdds:
        # The outward cell is measured in its leaky state
        # (average_states=False), the same policy the `outward_n`
        # characterization design records.
        outward = Tfet6TCell(CellSizing(), access=AccessConfig.OUTWARD_N)
        p_in = read("hold_power", "proposed", vdd,
                    lambda: hold_power(proposed_cell(), vdd))
        p_out = read("hold_power", "outward_n", vdd,
                     lambda: hold_power(outward, vdd, average_states=False))
        p_asym = read("hold_power", "asym", vdd,
                      lambda: hold_power(asym_cell(), vdd))
        p_7t = read("hold_power", "7t", vdd,
                    lambda: hold_power(seven_t_cell(), vdd))
        p_cmos = read("hold_power", "cmos", vdd,
                      lambda: hold_power(cmos_cell(), vdd))
        result.add_row(
            vdd,
            p_in,
            p_out,
            p_asym,
            p_7t,
            p_cmos,
            math.log10(p_out / p_in),
            math.log10(p_cmos / p_in),
            math.log10(p_asym / p_in),
        )
    result.notes.append(
        "paper: outward ~5 orders worse at 0.6 V and ~9 at 0.8 V; CMOS 6-7 "
        "orders above the proposed cell; asym ~4 orders above at 0.5 V"
    )
    return result
