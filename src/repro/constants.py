"""Physical constants and material parameters used across the library.

All quantities are SI unless the name says otherwise.  Device widths are
expressed in micrometres throughout the library (the paper quotes every
current density in A/um), so the per-width current helpers here return
A/um.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# --- Fundamental constants -------------------------------------------------

ELECTRON_CHARGE = 1.602176634e-19
"""Elementary charge q in coulombs."""

BOLTZMANN = 1.380649e-23
"""Boltzmann constant k_B in J/K."""

VACUUM_PERMITTIVITY = 8.8541878128e-12
"""Vacuum permittivity eps_0 in F/m."""

PLANCK = 6.62607015e-34
"""Planck constant h in J*s."""

ELECTRON_MASS = 9.1093837015e-31
"""Electron rest mass m_0 in kg."""

ROOM_TEMPERATURE = 300.0
"""Default simulation temperature in kelvin."""


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Thermal voltage kT/q in volts at the given temperature."""
    return BOLTZMANN * temperature / ELECTRON_CHARGE


THERMAL_VOLTAGE_300K = thermal_voltage(ROOM_TEMPERATURE)

MOSFET_SS_LIMIT_MV_PER_DEC = 1e3 * THERMAL_VOLTAGE_300K * math.log(10.0)
"""The 60 mV/dec room-temperature subthreshold-swing limit of MOSFETs."""


# --- Material parameters ---------------------------------------------------


@dataclass(frozen=True)
class Semiconductor:
    """Bulk semiconductor parameters relevant to tunneling devices."""

    name: str
    bandgap_ev: float
    relative_permittivity: float
    intrinsic_density_cm3: float
    effective_mass_tunnel: float
    """Reduced tunneling effective mass in units of m_0."""

    @property
    def permittivity(self) -> float:
        """Absolute permittivity in F/m."""
        return self.relative_permittivity * VACUUM_PERMITTIVITY


SILICON = Semiconductor(
    name="Si",
    bandgap_ev=1.12,
    relative_permittivity=11.7,
    intrinsic_density_cm3=1.0e10,
    effective_mass_tunnel=0.20,
)


@dataclass(frozen=True)
class Dielectric:
    """Gate dielectric parameters."""

    name: str
    relative_permittivity: float

    @property
    def permittivity(self) -> float:
        """Absolute permittivity in F/m."""
        return self.relative_permittivity * VACUUM_PERMITTIVITY

    def capacitance_per_area(self, thickness_m: float) -> float:
        """Parallel-plate capacitance in F/m^2 for the given thickness."""
        if thickness_m <= 0.0:
            raise ValueError(f"dielectric thickness must be positive, got {thickness_m}")
        return self.permittivity / thickness_m


HFO2 = Dielectric(name="HfO2", relative_permittivity=25.0)
SIO2 = Dielectric(name="SiO2", relative_permittivity=3.9)
