"""Shared SRAM-cell abstractions: sizing, per-transistor devices, builder.

Node-name conventions used by every cell and consumed by the analysis
layer:

* ``q`` / ``qb`` — the storage nodes (all metrics assume the cell
  initially stores q = 1, qb = 0);
* ``bl`` / ``blb`` — bitlines (``wbl``/``wblb``/``rbl`` for the 7T cell
  with decoupled ports);
* ``wl`` — wordline (``wwl``/``rwl`` for the 7T cell);
* ``vddc`` / ``vgnd`` — the cell's local supply and ground rails, kept
  separate from bitline clamps so rail-based assist techniques can
  drive them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuit.netlist import Circuit
from repro.devices.charges import LinearCharge, MirroredCharge
from repro.devices.mosfet import MosfetModel, mosfet_charges
from repro.devices.tfet import TfetTableModel

__all__ = ["CellSizing", "TfetDeviceSet", "CellBuilder", "STORAGE_NODE_WIRE_CAP"]

STORAGE_NODE_WIRE_CAP = 1.5e-16
"""Fixed wiring capacitance (F) on each storage node."""

JUNCTION_CAP_PER_UM = 1.0e-16
"""Drain/source junction capacitance (F per um width) to substrate."""


@dataclass(frozen=True)
class CellSizing:
    """Transistor widths in micrometres.

    The paper's cell ratio is ``beta = W_pulldown / W_access`` ("the
    ratio of the width of nTFETs in the inverter and the access
    transistor").  Sweeping beta moves the pull-down width while the
    access and pull-up widths stay put.
    """

    access_width: float = 0.1
    pulldown_width: float = 0.1
    pullup_width: float = 0.1

    def __post_init__(self) -> None:
        for name in ("access_width", "pulldown_width", "pullup_width"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")

    @property
    def beta(self) -> float:
        """Cell ratio W_pulldown / W_access."""
        return self.pulldown_width / self.access_width

    def with_beta(self, beta: float) -> "CellSizing":
        """Resize the pull-downs to the requested cell ratio."""
        if beta <= 0.0:
            raise ValueError(f"beta must be positive, got {beta}")
        return replace(self, pulldown_width=beta * self.access_width)


@dataclass(frozen=True)
class TfetDeviceSet:
    """One device card per transistor position (Monte-Carlo granularity).

    Positions follow the paper's Fig. 3: M1/M4 pull-downs, M2/M5
    pull-ups, M3/M6 access transistors; ``read_buffer`` is only used by
    the 7T cell.
    """

    pulldown_left: TfetTableModel
    pulldown_right: TfetTableModel
    pullup_left: TfetTableModel
    pullup_right: TfetTableModel
    access_left: TfetTableModel
    access_right: TfetTableModel
    read_buffer: TfetTableModel | None = None

    @staticmethod
    def uniform(device: TfetTableModel) -> "TfetDeviceSet":
        """All positions share one nominal device card."""
        return TfetDeviceSet(
            pulldown_left=device,
            pulldown_right=device,
            pullup_left=device,
            pullup_right=device,
            access_left=device,
            access_right=device,
            read_buffer=device,
        )

    POSITIONS = (
        "pulldown_left",
        "pulldown_right",
        "pullup_left",
        "pullup_right",
        "access_left",
        "access_right",
        "read_buffer",
    )


class CellBuilder:
    """Adds transistors *with their device capacitances* to a circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit

    def add_device(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        model,
        polarity: str,
        width_um: float,
    ) -> None:
        """Add one FET plus its gate and junction charge elements.

        P-type devices get the mirrored charge functions, matching the
        polarity mirror applied to their currents.
        """
        self.circuit.add_transistor(name, drain, gate, source, model, polarity, width_um)
        cgs, cgd = self._gate_charges(model)
        if polarity == "p":
            cgs, cgd = MirroredCharge(cgs), MirroredCharge(cgd)
        self.circuit.add_capacitor(gate, source, cgs, scale=width_um, name=f"{name}.cgs")
        self.circuit.add_capacitor(gate, drain, cgd, scale=width_um, name=f"{name}.cgd")
        junction = LinearCharge(JUNCTION_CAP_PER_UM)
        self.circuit.add_capacitor(drain, "0", junction, scale=width_um, name=f"{name}.cjd")
        self.circuit.add_capacitor(source, "0", junction, scale=width_um, name=f"{name}.cjs")

    @staticmethod
    def _gate_charges(model):
        if isinstance(model, TfetTableModel):
            return model.charges.cgs_per_um, model.charges.cgd_per_um
        if isinstance(model, MosfetModel):
            charges = mosfet_charges(model.params.threshold_voltage)
            return charges.cgs_per_um, charges.cgd_per_um
        raise TypeError(f"no capacitance model for device type {type(model).__name__}")

    def add_storage_wire_caps(self, nodes: tuple[str, ...] = ("q", "qb")) -> None:
        for node in nodes:
            self.circuit.add_capacitor(
                node, "0", LinearCharge(STORAGE_NODE_WIRE_CAP), name=f"{node}.wire"
            )
