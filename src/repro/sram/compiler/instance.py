"""Cell instantiation into a shared array circuit.

The single-cell builders (:meth:`repro.sram.base.SixTCellBase._build_core`)
write canonical node names — ``q``, ``qb``, ``bl``, ``blb``, ``wl``,
``vddc``, ``vgnd`` — directly into their private circuit.  To compose
many cells into one array netlist we run the same ``_build_core``
against an :class:`InstanceBuilder`: a :class:`~repro.sram.cell.CellBuilder`
whose node and device names are rewritten through an instance prefix
and an explicit node map (bitlines to ladder taps, wordline to the
decoder's RC ladder, rails to shared or per-cell sources).  The cell
classes themselves are untouched — the array reuses exactly the
transistor-plus-parasitics construction the single-cell benches and
the Monte-Carlo loop already exercise.
"""

from __future__ import annotations

from repro.circuit.netlist import _GROUND_NAMES, Circuit
from repro.devices.charges import LinearCharge
from repro.sram.cell import STORAGE_NODE_WIRE_CAP, CellBuilder

__all__ = ["InstanceBuilder", "instantiate_cell", "CANONICAL_NODES"]

#: Canonical 6T port/internal node names a cell core may reference.
CANONICAL_NODES = ("q", "qb", "bl", "blb", "wl", "vddc", "vgnd")


class InstanceBuilder(CellBuilder):
    """CellBuilder that renames nodes/devices into an instance scope.

    Nodes listed in ``node_map`` are connected to the mapped array
    nodes; every other node (the storage pair, any cell-internal
    node) is prefixed so instances cannot collide.  Ground passes
    through unmapped.
    """

    def __init__(self, circuit: Circuit, prefix: str, node_map: dict[str, str]):
        super().__init__(circuit)
        self.prefix = prefix
        self._map = dict(node_map)

    def map_node(self, name: str) -> str:
        if name in _GROUND_NAMES:
            return name
        return self._map.get(name, f"{self.prefix}{name}")

    def add_device(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        model,
        polarity: str,
        width_um: float,
    ) -> None:
        super().add_device(
            f"{self.prefix}{name}",
            self.map_node(drain),
            self.map_node(gate),
            self.map_node(source),
            model,
            polarity,
            width_um,
        )

    def add_storage_wire_caps(self, nodes: tuple[str, ...] = ("q", "qb")) -> None:
        for node in nodes:
            mapped = self.map_node(node)
            self.circuit.add_capacitor(
                mapped, "0", LinearCharge(STORAGE_NODE_WIRE_CAP), name=f"{mapped}.wire"
            )


def instantiate_cell(
    circuit: Circuit,
    cell,
    prefix: str,
    node_map: dict[str, str],
) -> dict[str, str]:
    """Build one cell instance into ``circuit``; returns the node map
    for every canonical node (mapped or prefixed) so callers can probe
    and set initial conditions on the instance's nodes."""
    builder = InstanceBuilder(circuit, prefix, node_map)
    cell._build_core(builder)
    builder.add_storage_wire_caps()
    return {name: builder.map_node(name) for name in CANONICAL_NODES}
