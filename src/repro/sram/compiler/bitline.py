"""Distributed bitline RC ladder — the single source of truth for
bitline loading.

The analytic array model (:mod:`repro.sram.array`) historically lumped
the bitline into ``fixed_bitline_cap + rows * cell_bitline_cap``.  The
compiler replaces that with a per-row RC ladder: each row contributes
one series wire-resistance segment and one capacitance tap (cell drain
junction + wire).  To keep the two views from drifting apart, the
analytic lumped value is *derived* from this ladder —
``ArrayGeometry.bitline_capacitance`` calls :func:`bitline_ladder` and
reads :attr:`BitlineLadder.total_capacitance`, so any change to how the
ladder accounts capacitance shows up identically in both the
closed-form estimates and the compiled netlists.

Rows that the column compiler instantiates as *explicit* bitcells
already stamp their own drain junction capacitance through
:meth:`repro.sram.cell.CellBuilder.add_device`; for those rows the
ladder tap carries only the remainder (wire portion) and records the
amount delegated to the explicit cell in :attr:`BitlineLadder.explicit_caps`,
keeping ``total_capacitance`` invariant by construction.

This module is a dependency leaf: it must not import anything from
``repro.sram`` (``repro.sram.array`` imports it at module load).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BITLINE_RES_PER_CELL",
    "WORDLINE_CAP_PER_CELL",
    "WORDLINE_RES_PER_CELL",
    "BitlineLadder",
    "bitline_ladder",
]

#: Bitline wire resistance per cell pitch (ohm).  M2-class local
#: interconnect at a ~0.5 um cell pitch; small enough that the ladder
#: is capacitance-dominated, large enough to be visible at 256+ rows.
BITLINE_RES_PER_CELL = 2.0

#: Wordline polysilicon/metal loading per cell pitch along a row.  The
#: gate capacitance of the access devices themselves is stamped by the
#: explicit cells; this is the wire component (F).
WORDLINE_CAP_PER_CELL = 2.0e-17

#: Wordline wire resistance per cell pitch (ohm) — strapped poly.
WORDLINE_RES_PER_CELL = 10.0


@dataclass(frozen=True)
class BitlineLadder:
    """Per-row RC decomposition of one bitline.

    ``segment_caps[i]`` is the capacitance tapped at the ladder node of
    row ``i`` (row 0 nearest the periphery), ``segment_res[i]`` the
    series resistance between row ``i``'s node and the previous one.
    ``fixed_cap`` sits at the periphery end (sense/precharge/column-mux
    diffusion).  ``explicit_caps`` records, per explicitly
    instantiated row, the capacitance delegated to that row's own cell
    netlist instead of being stamped on the ladder.
    """

    rows: int
    segment_caps: tuple[float, ...]
    segment_res: tuple[float, ...]
    fixed_cap: float
    explicit_caps: tuple[float, ...] = ()

    @property
    def total_capacitance(self) -> float:
        """Lumped single-bitline capacitance (F), invariant under
        explicit-row delegation: fixed + taps + delegated amounts."""
        return self.fixed_cap + sum(self.segment_caps) + sum(self.explicit_caps)

    @property
    def total_resistance(self) -> float:
        """End-to-end bitline wire resistance (ohm)."""
        return sum(self.segment_res)

    @property
    def elmore_delay(self) -> float:
        """First-order Elmore RC delay from periphery to the far row
        (s) — the distributed-vs-lumped correction the analytic model
        cannot see."""
        delay = 0.0
        upstream_r = 0.0
        for res, cap in zip(self.segment_res, self.segment_caps):
            upstream_r += res
            delay += upstream_r * cap
        return delay


def bitline_ladder(
    rows: int,
    cell_cap: float,
    fixed_cap: float,
    res_per_cell: float = BITLINE_RES_PER_CELL,
    explicit_rows: tuple[int, ...] = (),
    explicit_cell_cap: float = 0.0,
) -> BitlineLadder:
    """Build the per-row RC ladder for one bitline.

    ``explicit_rows`` are row indices the compiler instantiates as full
    bitcells; ``explicit_cell_cap`` is the drain-side capacitance each
    such cell stamps by itself (junction caps from ``CellBuilder``).
    Those rows' ladder taps are reduced by that amount (floored at
    zero) and the delegated value recorded so ``total_capacitance``
    equals ``fixed_cap + rows * cell_cap`` regardless of how many rows
    are explicit.
    """
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    if cell_cap < 0.0 or fixed_cap < 0.0 or res_per_cell < 0.0:
        raise ValueError("bitline ladder values must be non-negative")
    explicit = set(explicit_rows)
    unknown = explicit - set(range(rows))
    if unknown:
        raise ValueError(f"explicit rows {sorted(unknown)} outside 0..{rows - 1}")
    segment_caps = []
    explicit_caps = []
    for row in range(rows):
        if row in explicit:
            delegated = min(max(explicit_cell_cap, 0.0), cell_cap)
            segment_caps.append(cell_cap - delegated)
            explicit_caps.append(delegated)
        else:
            segment_caps.append(cell_cap)
    return BitlineLadder(
        rows=rows,
        segment_caps=tuple(segment_caps),
        segment_res=tuple(res_per_cell for _ in range(rows)),
        fixed_cap=fixed_cap,
        explicit_caps=tuple(explicit_caps),
    )
