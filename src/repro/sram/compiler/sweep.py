"""Engine-backed array sweeps: many compiled paths, one batch.

A geometry sweep (delay/energy vs row count, scenario matrix) is a
list of independent compile-and-measure tasks — exactly the shape
:mod:`repro.engine` runs well: process fan-out, structured failures,
JSONL checkpoints, kill-and-resume.  The task function is module-level
so it pickles into worker processes, and a task's work is a pure
function of its payload, so a resumed run is bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.engine import EngineConfig, Task, derive_seed, run_tasks
from repro.sram.array import ArrayGeometry

__all__ = ["SWEEP_DESIGNS", "sweep_points", "run_array_sweep"]

SWEEP_DESIGNS = ("proposed", "cmos", "asym")
"""Designs the sweep can build (two-bitline 6T cells; the 7T cell's
decoupled read port is outside the column compiler's topology)."""


def _sweep_cell(design: str):
    """Cell + default read assist for one sweepable design."""
    from repro.experiments.designs import (
        asym_cell,
        cmos_cell,
        proposed_cell,
        proposed_read_assist,
    )

    if design == "proposed":
        return proposed_cell(), proposed_read_assist()
    if design == "cmos":
        return cmos_cell(), None
    if design == "asym":
        return asym_cell(), None
    raise ValueError(f"unknown sweep design {design!r}; known: {SWEEP_DESIGNS}")


def sweep_points(
    rows_list,
    columns: int,
    vdd: float,
    design: str = "proposed",
    scenario: str = "read",
) -> list[dict]:
    """The sweep's task payloads, one per geometry."""
    if design not in SWEEP_DESIGNS:
        raise ValueError(f"unknown sweep design {design!r}; known: {SWEEP_DESIGNS}")
    return [
        {
            "design": design,
            "rows": int(rows),
            "columns": int(columns),
            "vdd": float(vdd),
            "scenario": scenario,
        }
        for rows in rows_list
    ]


def evaluate_sweep_point(payload, ctx=None) -> dict:
    """Compile and measure one geometry (module-level: must pickle).

    Returns the :class:`~repro.sram.compiler.measure.ArrayMeasurement`
    fields as a JSON-serializable dict (``inf``/``nan`` delays use the
    engine checkpoint's JSON dialect).
    """
    from repro.sram.compiler.measure import measure_array
    from repro.sram.compiler.column import compile_array

    cell, assist = _sweep_cell(payload["design"])
    if payload["scenario"] != "read":
        assist = None  # the default assist is a read assist
    geometry = ArrayGeometry(rows=payload["rows"], columns=payload["columns"])
    compiled = compile_array(
        cell, geometry, payload["vdd"],
        scenario=payload["scenario"], assist=assist,
    )
    measurement = measure_array(compiled)
    return {"design": payload["design"], **asdict(measurement)}


def run_array_sweep(
    rows_list,
    columns: int = 4,
    vdd: float = 0.8,
    design: str = "proposed",
    scenario: str = "read",
    engine: EngineConfig = EngineConfig(),
):
    """Run the sweep through the batch engine.

    Returns ``(results, report)``: the per-geometry measurement dicts
    in ``rows_list`` order (``None`` where a task failed — the failure
    detail is in the report) and the engine's
    :class:`~repro.engine.scheduler.BatchReport` (checkpoint/resume
    statistics, telemetry counters).
    """
    payloads = sweep_points(rows_list, columns, vdd, design, scenario)
    tasks = [
        Task(
            index=k,
            fn=evaluate_sweep_point,
            payload=payload,
            seed=derive_seed(engine.root_seed, k),
        )
        for k, payload in enumerate(payloads)
    ]
    report = run_tasks(tasks, engine)
    by_index = {o.index: o for o in report.outcomes}
    results = [
        by_index[k].value if k in by_index and by_index[k].ok else None
        for k in range(len(tasks))
    ]
    return results, report
