"""Hierarchical SRAM array netlist compiler.

``repro.sram.array`` plans a macro with closed-form estimates (lumped
bitline capacitance, fixed periphery overheads, a constant decode
time).  This package *compiles* the same organization into a
simulatable netlist, in the style of OpenNVRAM's ``modules/``
hierarchy:

* :mod:`~repro.sram.compiler.bitline` — the distributed bitline RC
  ladder.  Its per-segment values are the **single source of truth**
  for the analytic lumped capacitance:
  :attr:`repro.sram.array.ArrayGeometry.bitline_capacitance` is derived
  from :func:`~repro.sram.compiler.bitline.bitline_ladder`, so the
  closed-form model and the compiled netlist agree by construction.
* :mod:`~repro.sram.compiler.instance` — node-renaming cell
  instantiation, so the existing single-cell builders compose into a
  shared array circuit unchanged.
* :mod:`~repro.sram.compiler.decoder` — the row-decode chain
  (predecode NAND + buffer stages + wordline driver) that replaces the
  analytic ``decode_time`` constant with a simulated delay.
* :mod:`~repro.sram.compiler.periphery` — precharge devices, write
  drivers, the replica-bitline timing path, and the sense-amplifier
  hookup.
* :mod:`~repro.sram.compiler.column` — the composed critical-path
  netlist: accessed cell at the far row, explicit half-selected
  neighbours, folded background rows, loaded wordline.
* :mod:`~repro.sram.compiler.measure` — transient measurement of the
  compiled path (read delay decomposition, read/write energy,
  half-select disturb) plus the analytic-vs-simulated comparison.
* :mod:`~repro.sram.compiler.sweep` — parameterized array sweeps
  through the batch engine (checkpoint/resume, parallel workers).

Submodules are imported lazily (PEP 562): ``bitline`` is a leaf that
:mod:`repro.sram.array` imports at module load, while the composition
modules import ``ArrayGeometry`` back from ``repro.sram.array`` — the
lazy exports keep that cycle unwound regardless of which side loads
first.
"""

from __future__ import annotations

__all__ = [
    "BitlineLadder",
    "bitline_ladder",
    "CompiledArray",
    "CompileOptions",
    "compile_array",
    "ArrayMeasurement",
    "ArrayComparison",
    "measure_array",
    "compare_array",
    "instantiate_cell",
    "PeripheryCensus",
    "run_array_sweep",
    "sweep_points",
]

_EXPORTS = {
    "BitlineLadder": "repro.sram.compiler.bitline",
    "bitline_ladder": "repro.sram.compiler.bitline",
    "CompiledArray": "repro.sram.compiler.column",
    "CompileOptions": "repro.sram.compiler.column",
    "compile_array": "repro.sram.compiler.column",
    "PeripheryCensus": "repro.sram.compiler.census",
    "ArrayMeasurement": "repro.sram.compiler.measure",
    "ArrayComparison": "repro.sram.compiler.measure",
    "measure_array": "repro.sram.compiler.measure",
    "compare_array": "repro.sram.compiler.measure",
    "instantiate_cell": "repro.sram.compiler.instance",
    "run_array_sweep": "repro.sram.compiler.sweep",
    "sweep_points": "repro.sram.compiler.sweep",
}


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
