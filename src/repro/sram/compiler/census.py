"""Device census of a compiled column, extrapolated to macro area.

The analytic area model (:func:`repro.sram.array.plan_array`) charges a
flat ``periphery_area_overhead`` fraction on top of the cell array.
The compiler can do better: it knows exactly which periphery devices a
row and a column carry, so the macro area is extrapolated from the
*compiled* device widths through the same lambda-rule
:class:`repro.analysis.area.AreaModel` the cell areas use.  Control and
IO (clocking, address latches, IO drivers) are not structurally
compiled; they enter as a documented fraction of the cell-array area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.area import AreaModel, cell_area_um2

__all__ = ["CONTROL_IO_AREA_FRACTION", "PeripheryCensus", "census_macro_area"]

CONTROL_IO_AREA_FRACTION = 0.12
"""Control/IO area not structurally compiled (clock, address latch,
IO), as a fraction of the cell-array area."""


@dataclass(frozen=True)
class PeripheryCensus:
    """Per-row and per-column periphery device widths of one compiled
    column, plus the shared (once-per-macro path) devices."""

    row_device_widths: tuple[float, ...]
    """Devices repeated per row: the wordline driver chain (each row
    owns its driver; the shared predecoder is amortized into this list
    too — a documented over-count of at most the NAND stack)."""

    column_device_widths: tuple[float, ...]
    """Devices repeated per column: precharge, sense amp, write
    drivers."""

    shared_device_widths: tuple[float, ...] = ()
    """Devices occurring once per macro (the replica timing column)."""

    model: AreaModel = AreaModel()

    @property
    def row_area_um2(self) -> float:
        return sum(self.model.transistor_area(w) for w in self.row_device_widths)

    @property
    def column_area_um2(self) -> float:
        return sum(self.model.transistor_area(w) for w in self.column_device_widths)

    @property
    def shared_area_um2(self) -> float:
        return sum(self.model.transistor_area(w) for w in self.shared_device_widths)


def census_macro_area(cell, geometry, census: PeripheryCensus) -> dict[str, float]:
    """Macro area breakdown (um^2) from the compiled census.

    Returns the components and the total so experiments can show where
    the analytic overhead fraction comes from.
    """
    cell_array = geometry.bits * cell_area_um2(cell)
    rows_area = geometry.rows * census.row_area_um2
    columns_area = geometry.columns * census.column_area_um2
    shared = census.shared_area_um2
    control_io = CONTROL_IO_AREA_FRACTION * cell_array
    return {
        "cell_array_um2": cell_array,
        "row_periphery_um2": rows_area,
        "column_periphery_um2": columns_area,
        "shared_um2": shared,
        "control_io_um2": control_io,
        "total_um2": cell_array + rows_area + columns_area + shared + control_io,
    }
