"""Row-decode chain: predecode NAND plus a scaled wordline driver.

The analytic array model charges every access a flat
:data:`repro.sram.array.DECODE_TIME`; the compiler replaces that with a
real gate chain simulated in the same transient as the cells it drives:
an address-edge Pulse feeds a predecode NAND2 (second input tied to the
periphery supply — the "enable" leg of a real predecoder), followed by
a geometrically up-sized inverter chain whose last stage is the
wordline driver.  The chain's inverter parity is chosen from the
wordline polarity so the idle/active levels match the cell's
convention: active-low wordlines (the proposed inward-pTFET cell) get
an even inverter count, active-high (CMOS-style) an odd one.

All gates are built through :class:`repro.sram.cell.CellBuilder`, so
every stage carries its gate and junction capacitances — the decode
delay is loaded by real parasitics plus whatever wordline RC ladder the
column compiler hangs on the output node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.library import nmos_device, pmos_device
from repro.sram.cell import CellBuilder

__all__ = ["DecoderSizing", "DecoderPath", "attach_row_decoder"]


@dataclass(frozen=True)
class DecoderSizing:
    """Gate widths (um) and the per-stage up-sizing of the driver chain."""

    nand_nmos: float = 0.2
    nand_pmos: float = 0.3
    inv_nmos: float = 0.2
    inv_pmos: float = 0.3
    stage_scale: float = 3.0

    def __post_init__(self) -> None:
        for name in ("nand_nmos", "nand_pmos", "inv_nmos", "inv_pmos"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.stage_scale < 1.0:
            raise ValueError("stage_scale must be >= 1")


@dataclass(frozen=True)
class DecoderPath:
    """One compiled row-decode path."""

    addr_node: str
    out_node: str
    stages: int
    """Inverter stages after the NAND (2 for active-low, 3 for active-high)."""

    initial_conditions: dict[str, float]
    """Static pre-address levels of every decoder node."""

    device_widths: tuple[float, ...]
    """All gate widths, for the area census."""


def attach_row_decoder(
    circuit: Circuit,
    vdd_node: str,
    vdd: float,
    t_addr: float,
    active_low: bool,
    out_node: str = "wl_drv",
    sizing: DecoderSizing | None = None,
    prefix: str = "dec_",
) -> DecoderPath:
    """Build the decode chain driving ``out_node``.

    The address input steps 0 → ``vdd`` at ``t_addr`` (the selected
    row's predecode line going true).  ``active_low`` is the cell's
    wordline convention (:meth:`~repro.sram.base.SixTCellBase.wl_active`
    at 0 V means active-low).
    """
    sizing = sizing or DecoderSizing()
    nmos = nmos_device()
    pmos = pmos_device()
    builder = CellBuilder(circuit)
    widths: list[float] = []

    addr = f"{prefix}addr"
    circuit.add_voltage_source(
        f"{prefix}addr_src", addr, "0",
        Pulse(base=0.0, active=vdd, t_start=t_addr, width=1e-6),
    )

    # Predecode NAND2: inputs (addr, enable); enable is tied to the
    # periphery supply, so the NAND reduces to an inverter on addr with
    # the series-stack resistance of a real predecoder.
    nand_out = f"{prefix}nand"
    mid = f"{prefix}mid"
    builder.add_device(f"{prefix}nand_pu_a", nand_out, addr, vdd_node, pmos, "p", sizing.nand_pmos)
    builder.add_device(f"{prefix}nand_pu_en", nand_out, vdd_node, vdd_node, pmos, "p", sizing.nand_pmos)
    builder.add_device(f"{prefix}nand_pd_a", nand_out, addr, mid, nmos, "n", sizing.nand_nmos)
    builder.add_device(f"{prefix}nand_pd_en", mid, vdd_node, "0", nmos, "n", sizing.nand_nmos)
    widths += [sizing.nand_pmos, sizing.nand_pmos, sizing.nand_nmos, sizing.nand_nmos]

    # Driver chain.  Even inverter count keeps the NAND's idle-high
    # level (active-low wordline); odd inverts it (active-high).
    stages = 2 if active_low else 3
    level = vdd  # static level at the chain input (addr low -> NAND high)
    ics = {addr: 0.0, nand_out: vdd, mid: 0.0}
    node_in = nand_out
    for k in range(stages):
        node_out = out_node if k == stages - 1 else f"{prefix}i{k + 1}"
        scale = sizing.stage_scale ** (k + 1)
        wn, wp = sizing.inv_nmos * scale, sizing.inv_pmos * scale
        builder.add_device(f"{prefix}inv{k + 1}_pu", node_out, node_in, vdd_node, pmos, "p", wp)
        builder.add_device(f"{prefix}inv{k + 1}_pd", node_out, node_in, "0", nmos, "n", wn)
        widths += [wp, wn]
        level = 0.0 if level > 0.5 * vdd else vdd
        ics[node_out] = level
        node_in = node_out

    return DecoderPath(
        addr_node=addr,
        out_node=out_node,
        stages=stages,
        initial_conditions=ics,
        device_widths=tuple(widths),
    )
