"""Critical-path column compiler: the composed, simulatable array.

:func:`compile_array` assembles the worst-case access path of an
``ArrayGeometry`` into one netlist:

* the **accessed cell** at the far end of both the bitline ladder
  (last row) and the wordline ladder (last column) — the longest RC
  path the decoder and the sense amp ever see;
* ``explicit_neighbours`` unselected cells on the same column (their
  wordline held inactive) — real leakage/charge-sharing loads at the
  far end; the remaining rows fold into the bitline ladder's per-row
  taps, with the explicit rows' junction capacitance delegated to the
  instantiated cells so the total stays exactly the analytic lumped
  value (see :mod:`repro.sram.compiler.bitline`);
* one **half-selected cell** on the same row at the near wordline tap
  (columns > 1): shared wordline, its own precharged-then-floating
  bitline pair — the disturb victim in the ``half_select`` scenario
  and a realistic wordline load otherwise;
* the **row-decode chain** driving a coarsened wordline RC ladder;
* **precharge** devices released just before the address edge;
* scenario periphery: the sense amplifier timed by a **replica
  bitline** (or an ideal pulse) for reads, **write drivers** for
  writes and half-select disturbs.

The compiled :class:`CompiledArray` carries a standard
:class:`~repro.sram.testbench.Testbench`, so the existing analysis
layer (energy integration, verify audits, telemetry) applies
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.sram.array import ArrayGeometry
from repro.sram.assist import AccessWindow, Assist
from repro.sram.cell import JUNCTION_CAP_PER_UM
from repro.sram.compiler.bitline import (
    WORDLINE_CAP_PER_CELL,
    WORDLINE_RES_PER_CELL,
    BitlineLadder,
)
from repro.sram.compiler.census import PeripheryCensus
from repro.sram.compiler.decoder import DecoderPath, DecoderSizing, attach_row_decoder
from repro.sram.compiler.instance import instantiate_cell
from repro.sram.compiler.periphery import (
    ReplicaPath,
    attach_precharge,
    attach_replica_bitline,
    attach_write_drivers,
)
from repro.sram.senseamp import SenseAmpSizing, attach_sense_amplifier
from repro.sram.testbench import DEFAULT_ACCESS_START, Testbench

__all__ = ["SCENARIOS", "CompileOptions", "CompiledArray", "compile_array"]

SCENARIOS = ("read", "write", "half_select")


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of the critical-path compilation."""

    explicit_neighbours: int = 2
    """Unselected same-column cells instantiated as real bitcells."""

    sense: str = "replica"
    """Read sense-enable source: "replica" (replica-bitline timed),
    "fixed" (ideal pulse at ``sense_fire_delay``), or "none" (bitline
    split only, no sense amp)."""

    t_addr: float = DEFAULT_ACCESS_START
    """Address-edge time; also the access window start."""

    duration: float = 4.0e-9
    """Access window length (wordline stays decoded this long)."""

    precharge_lead: float = 1.0e-10
    """Precharge releases this long before the address edge."""

    wordline_segments: int = 8
    """Wordline RC ladder coarsening (at most one segment per column)."""

    sense_fire_delay: float = 1.5e-9
    """Sense-enable delay after the address edge in "fixed" mode."""

    decoder: DecoderSizing = field(default_factory=DecoderSizing)
    senseamp: SenseAmpSizing = field(default_factory=SenseAmpSizing)

    def __post_init__(self) -> None:
        if self.sense not in ("replica", "fixed", "none"):
            raise ValueError(f"unknown sense mode {self.sense!r}")
        if self.explicit_neighbours < 0:
            raise ValueError("explicit_neighbours cannot be negative")
        if self.t_addr <= 0.0 or self.duration <= 0.0:
            raise ValueError("t_addr and duration must be positive")


@dataclass(frozen=True)
class CompiledArray:
    """A compiled critical path, ready to simulate."""

    cell: object
    geometry: ArrayGeometry
    vdd: float
    scenario: str
    bench: Testbench
    ladder: BitlineLadder
    decoder: DecoderPath
    replica: ReplicaPath | None
    census: PeripheryCensus
    probes: dict[str, str]
    options: CompileOptions
    assist: Assist | None = None

    @property
    def circuit(self) -> Circuit:
        return self.bench.circuit

    @property
    def unknown_count(self) -> int:
        return self.circuit.unknown_count


def compile_array(
    cell,
    geometry: ArrayGeometry,
    vdd: float,
    scenario: str = "read",
    assist: Assist | None = None,
    options: CompileOptions | None = None,
) -> CompiledArray:
    """Compile the worst-case access path of ``cell`` in ``geometry``."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")
    options = options or CompileOptions()
    _check_cell(cell)
    _check_assist(assist, scenario)
    rows, columns = geometry.rows, geometry.columns

    circuit = Circuit(f"{cell.name} {rows}x{columns} array {scenario} path")
    ics: dict[str, float] = {}
    probes: dict[str, str] = {}

    # -- supplies ------------------------------------------------------------
    circuit.add_voltage_source("vp", "vp", "0", vdd)  # periphery supply
    circuit.add_voltage_source("vddc", "vddc", "0", vdd)  # unselected cell rails
    circuit.add_voltage_source("vgnd", "vgnd", "0", 0.0)
    window = AccessWindow(options.t_addr, options.t_addr + options.duration)
    # The accessed cell always gets dedicated rail sources: rail-based
    # assists are column-gated (they reach only the accessed cell — the
    # half-selected victim staying on the plain rails is exactly the
    # hazard the half_select scenario measures), and dedicated sources
    # let the measurement separate the cell's rail energy from the
    # periphery's.
    if assist is not None and assist.target in ("vdd", "vgnd"):
        circuit.add_voltage_source("sel_vddc", "sel_vddc", "0", assist.vdd_rail(vdd, window))
        circuit.add_voltage_source("sel_vgnd", "sel_vgnd", "0", assist.gnd_rail(vdd, window))
    else:
        circuit.add_voltage_source("sel_vddc", "sel_vddc", "0", vdd)
        circuit.add_voltage_source("sel_vgnd", "sel_vgnd", "0", 0.0)
    sel_rails = {"vddc": "sel_vddc", "vgnd": "sel_vgnd"}
    ics["sel_vddc"], ics["sel_vgnd"] = vdd, 0.0
    ics["vp"], ics["vddc"], ics["vgnd"] = vdd, vdd, 0.0

    # -- row decoder + wordline RC ladder ------------------------------------
    wl_off_level = cell.wl_inactive(vdd)
    active_low = cell.wl_active(vdd) < wl_off_level
    decoder = attach_row_decoder(
        circuit, "vp", vdd, options.t_addr, active_low,
        out_node="wl_0", sizing=options.decoder,
    )
    ics.update(decoder.initial_conditions)
    segments = max(1, min(options.wordline_segments, columns))
    cells_per_segment = columns / segments
    wl_far = "wl_0"
    for s in range(segments):
        node = f"wl_{s + 1}"
        circuit.add_resistor(wl_far, node, WORDLINE_RES_PER_CELL * cells_per_segment)
        circuit.add_capacitor(
            node, "0", WORDLINE_CAP_PER_CELL * cells_per_segment, name=f"wl.c{s}"
        )
        ics[node] = wl_off_level
        wl_far = node
    circuit.add_voltage_source("wl_off", "wl_off", "0", wl_off_level)
    ics["wl_off"] = wl_off_level
    probes["wl_near"], probes["wl_far"] = "wl_0", wl_far

    # -- bitline ladders with explicit far-end rows ---------------------------
    n_explicit = min(options.explicit_neighbours, rows - 1)
    explicit_rows = tuple(range(rows - 1 - n_explicit, rows))
    junction = JUNCTION_CAP_PER_UM * cell.sizing.access_width
    ladder = geometry.bitline_ladder(
        explicit_rows=explicit_rows, explicit_cell_cap=junction
    )
    precharge_level = vdd
    if assist is not None:
        precharge_level = assist.bitline_level(vdd, vdd)
    for name in ("bl", "blb"):
        prev = f"{name}_0"
        circuit.add_capacitor(prev, "0", ladder.fixed_cap, name=f"{name}.fixed")
        ics[prev] = precharge_level
        for row in range(rows):
            node = f"{name}_{row + 1}"
            circuit.add_resistor(prev, node, ladder.segment_res[row])
            if ladder.segment_caps[row] > 0.0:
                circuit.add_capacitor(
                    node, "0", ladder.segment_caps[row], name=f"{name}.c{row}"
                )
            ics[node] = precharge_level
            prev = node
    probes["bl_near"], probes["blb_near"] = "bl_0", "blb_0"
    probes["bl_far"], probes["blb_far"] = f"bl_{rows}", f"blb_{rows}"

    # -- cells ---------------------------------------------------------------
    storage = cell._storage_ic(vdd)
    sel = instantiate_cell(
        circuit, cell, prefix="sel_",
        node_map={
            "bl": f"bl_{rows}", "blb": f"blb_{rows}", "wl": wl_far, **sel_rails,
        },
    )
    ics[sel["q"]], ics[sel["qb"]] = storage["q"], storage["qb"]
    probes["q"], probes["qb"] = sel["q"], sel["qb"]

    for k, row in enumerate(r for r in explicit_rows if r != rows - 1):
        nodes = instantiate_cell(
            circuit, cell, prefix=f"n{k}_",
            node_map={
                "bl": f"bl_{row + 1}", "blb": f"blb_{row + 1}",
                "wl": "wl_off", "vddc": "vddc", "vgnd": "vgnd",
            },
        )
        ics[nodes["q"]], ics[nodes["qb"]] = storage["q"], storage["qb"]

    half_selected = columns > 1
    if half_selected:
        # Same row, near wordline tap, own (floating) precharged bitlines.
        for name in ("hs_bl", "hs_blb"):
            circuit.add_capacitor(
                name, "0", geometry.bitline_capacitance, name=f"{name}.lump"
            )
            ics[name] = precharge_level
        hs = instantiate_cell(
            circuit, cell, prefix="hs_",
            node_map={
                "bl": "hs_bl", "blb": "hs_blb", "wl": "wl_1",
                "vddc": "vddc", "vgnd": "vgnd",
            },
        )
        ics[hs["q"]], ics[hs["qb"]] = storage["q"], storage["qb"]
        probes["hs_q"], probes["hs_qb"] = hs["q"], hs["qb"]

    # -- periphery -----------------------------------------------------------
    release = options.t_addr - options.precharge_lead
    precharged = ["bl_0", "blb_0"]
    if half_selected:
        precharged += ["hs_bl", "hs_blb"]
    replica: ReplicaPath | None = None
    sa_widths: list[float] = []
    shared_widths: list[float] = []

    if scenario == "read" and options.sense == "replica":
        replica = attach_replica_bitline(
            circuit, cell, geometry, vdd,
            wordline_node="wl_0", precharge_level=precharge_level, vdd_node="vp",
        )
        ics.update(replica.initial_conditions)
        precharged.append(replica.rbl_near)
        shared_widths = list(replica.device_widths)
        probes["enable"] = replica.enable_node
        probes["rbl"] = replica.rbl_near

    pc_widths = attach_precharge(
        circuit, tuple(precharged), vdd, precharge_level, release,
    )
    ics["prech"] = 0.0

    if scenario == "read":
        if options.sense != "none":
            sz = options.senseamp
            attach_sense_amplifier(
                circuit, "bl_0", "blb_0", vdd,
                fire_time=options.t_addr + options.sense_fire_delay,
                sizing=sz,
                enable_node=replica.enable_node if replica else None,
                sample_node=replica.sample_node if replica else None,
            )
            ics["sa_out"] = ics["sa_outb"] = precharge_level
            ics["sa_tail"] = vdd
            ics["sa_vdd"] = vdd
            if replica is None:
                ics["sa_en"], ics["sa_smp"] = 0.0, vdd
            probes["sa_out"], probes["sa_outb"] = "sa_out", "sa_outb"
            sa_widths = [
                sz.pass_gate, sz.pass_gate,
                sz.latch_pmos, sz.latch_pmos,
                sz.latch_nmos * (1.0 + sz.mismatch), sz.latch_nmos,
                sz.footer,
            ]
    else:
        high = None
        if assist is not None and assist.target == "bl":
            high = assist.bitline_level(vdd, vdd)
        attach_write_drivers(
            circuit, "bl_0", "blb_0", vdd,
            t_on=options.t_addr, pulse_width=options.duration, high_level=high,
        )
        ics["wd_bl"] = ics["wd_blb"] = vdd

    census = PeripheryCensus(
        row_device_widths=decoder.device_widths,
        column_device_widths=tuple(pc_widths) + tuple(sa_widths),
        shared_device_widths=tuple(shared_widths),
    )

    bench = Testbench(
        circuit=circuit,
        initial_conditions=ics,
        window=window,
        one_node=sel["q"],
        zero_node=sel["qb"],
        read_bitline="blb_0",
        read_reference="bl_0",
        precharge_level=precharge_level,
        notes={
            "t_addr": options.t_addr,
            "n_explicit": float(n_explicit),
            "unknowns": float(circuit.unknown_count),
        },
    )
    return CompiledArray(
        cell=cell,
        geometry=geometry,
        vdd=vdd,
        scenario=scenario,
        bench=bench,
        ladder=ladder,
        decoder=decoder,
        replica=replica,
        census=census,
        probes=probes,
        options=options,
        assist=assist,
    )


def _check_cell(cell) -> None:
    if hasattr(cell, "read_buffer_width") or "7T" in getattr(cell, "name", ""):
        raise NotImplementedError(
            "the 7T cell's decoupled read port needs its own column "
            "topology; compile_array supports two-bitline 6T cells"
        )
    if not hasattr(cell, "_build_core"):
        raise TypeError(
            f"{type(cell).__name__} has no _build_core hook; the compiler "
            "composes 6T-style two-bitline cells"
        )


def _check_assist(assist: Assist | None, scenario: str) -> None:
    if assist is None:
        return
    expected = "read" if scenario == "read" else "write"
    if assist.kind != expected:
        raise ValueError(
            f"{assist.name} is a {assist.kind} assist; the {scenario} "
            f"scenario needs a {expected} assist"
        )
    if assist.target == "wl":
        raise NotImplementedError(
            "wordline-level assists move the decoder's driver rail; the "
            "compiled decode chain does not model a boosted rail yet"
        )
