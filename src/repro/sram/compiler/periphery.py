"""Column periphery: precharge, write drivers, replica-bitline timing.

Everything here hangs off the *near* (periphery) end of the bitline
ladders built by :mod:`repro.sram.compiler.column`:

* **Precharge** — pMOS devices holding the bitlines at the precharge
  level until just before the wordline fires (gate released by a
  shared ``prech`` pulse), replacing the ideal initial-condition-only
  precharge of the single-cell benches.
* **Write drivers** — the selected column's bitline pulled to the
  write data through a driver on-resistance, the complement held high.
* **Replica bitline** — a mirrored single-ended ladder discharged by
  ``n_replica`` hardwired replica cells (real bitcells of the same
  type storing the always-discharge state, wordline tied to the real
  decoded wordline), feeding a skewed inverter whose output is the
  sense-enable.  Because the replica column is the same RC ladder with
  the same cells, the sense fire time tracks the data bitlines across
  geometry, V_DD, and corner — the OpenNVRAM ``replica_bitline``
  scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.library import nmos_device, pmos_device
from repro.sram.cell import CellBuilder
from repro.sram.compiler.instance import instantiate_cell

__all__ = [
    "PRECHARGE_WIDTH",
    "WRITE_DRIVER_RESISTANCE",
    "ReplicaPath",
    "attach_precharge",
    "attach_write_drivers",
    "attach_replica_bitline",
    "replica_cell_count",
]

PRECHARGE_WIDTH = 0.3
"""Precharge pMOS width (um) per bitline."""

WRITE_DRIVER_RESISTANCE = 1.0e3
"""Write-driver on-resistance (ohm) between the data source and the
bitline — sets a realistic drive edge instead of an ideal clamp."""

#: Skewed sense-enable inverter widths: strong pull-up / weak pull-down
#: puts the switching threshold high, so the enable fires after a
#: modest replica-bitline droop (~25-30 % of V_DD).
SENSE_INV_PMOS = 0.6
SENSE_INV_NMOS = 0.1


def replica_cell_count(rows: int) -> int:
    """Replica cells hardwired to discharge the replica bitline.

    ``N`` replicas make the replica line fall ~``N``x faster than a
    single cell, firing the sense when the worst-case data bitline has
    developed roughly ``V_DD * fraction / N`` of split — the standard
    replica ratio.  Scales with rows so the tracking holds from the
    4-row smoke arrays to 256+ rows.
    """
    return max(2, rows // 32)


def attach_precharge(
    circuit: Circuit,
    bitlines: tuple[str, ...],
    vdd: float,
    precharge_level: float,
    release_time: float,
    gate_node: str = "prech",
    supply_node: str = "vp_pre",
) -> list[float]:
    """Precharge pMOS per bitline; released at ``release_time``.

    Returns the added device widths (area census).  The precharge
    supply is its own source so a ``bl_lowering`` read assist is one
    level change, not a topology change.
    """
    builder = CellBuilder(circuit)
    pmos = pmos_device()
    circuit.add_voltage_source(supply_node, supply_node, "0", precharge_level)
    circuit.add_voltage_source(
        f"{gate_node}_src", gate_node, "0",
        Pulse(base=0.0, active=vdd, t_start=release_time, width=1e-6),
    )
    widths = []
    for bl in bitlines:
        builder.add_device(f"pc_{bl}", bl, gate_node, supply_node, pmos, "p", PRECHARGE_WIDTH)
        widths.append(PRECHARGE_WIDTH)
    return widths


def attach_write_drivers(
    circuit: Circuit,
    bl: str,
    blb: str,
    vdd: float,
    t_on: float,
    pulse_width: float,
    high_level: float | None = None,
) -> None:
    """Drive a write-0 onto ``bl`` (and hold ``blb`` high) through the
    driver on-resistance, starting at ``t_on``.

    Matches the single-cell :meth:`write_testbench` data convention
    (bl low / blb high flips the canonical q = 1 state); ``high_level``
    is the ``bl_raising`` write-assist knob.
    """
    high = vdd if high_level is None else high_level
    circuit.add_voltage_source(
        "wd_bl", "wd_bl", "0",
        Pulse(base=vdd, active=0.0, t_start=t_on, width=pulse_width),
    )
    circuit.add_resistor("wd_bl", bl, WRITE_DRIVER_RESISTANCE)
    circuit.add_voltage_source(
        "wd_blb", "wd_blb", "0",
        Pulse(base=vdd, active=high, t_start=t_on, width=pulse_width)
        if high != vdd
        else vdd,
    )
    circuit.add_resistor("wd_blb", blb, WRITE_DRIVER_RESISTANCE)


@dataclass(frozen=True)
class ReplicaPath:
    """The compiled replica-bitline timing path."""

    rbl_near: str
    """Near-end replica bitline node (the sense inverter's input)."""

    enable_node: str
    """Active-high sense-enable output."""

    sample_node: str
    """Enable complement — gates the sense-amp sampling pass gates, so
    sampling releases exactly when the latch fires."""

    n_replica: int
    initial_conditions: dict[str, float]
    device_widths: tuple[float, ...]


def attach_replica_bitline(
    circuit: Circuit,
    cell,
    geometry,
    vdd: float,
    wordline_node: str,
    precharge_level: float,
    vdd_node: str = "vp",
    prefix: str = "rbl",
) -> ReplicaPath:
    """Build the replica column and its sense-enable inverter.

    The replica cells are full bitcell instances of ``cell`` storing the
    canonical q = 1 state with their *discharging* bitline (``blb``, the
    qb = 0 side) bussed onto the replica ladder — a replica read always
    discharges, and through exactly the access path a real read uses.
    Their wordline is ``wordline_node`` (the decoder output), so the
    enable timing includes the decode edge.
    """
    rows = geometry.rows
    n_replica = replica_cell_count(rows)
    replica_rows = tuple(range(rows - n_replica, rows))
    junction_cap = _cell_bitline_junction_cap(cell)
    ladder = geometry.bitline_ladder(
        explicit_rows=replica_rows, explicit_cell_cap=junction_cap
    )

    ics: dict[str, float] = {}
    widths: list[float] = []
    # The single-ended ladder: node 0 at the periphery.
    prev = f"{prefix}_0"
    circuit.add_capacitor(prev, "0", ladder.fixed_cap, name=f"{prefix}.fixed")
    ics[prev] = precharge_level
    for row in range(rows):
        node = f"{prefix}_{row + 1}"
        circuit.add_resistor(prev, node, ladder.segment_res[row])
        if ladder.segment_caps[row] > 0.0:
            circuit.add_capacitor(
                node, "0", ladder.segment_caps[row], name=f"{prefix}.c{row}"
            )
        ics[node] = precharge_level
        prev = node
    far = prev

    storage_ic = cell._storage_ic(vdd)
    for k, row in enumerate(replica_rows):
        # Dump node for the non-discharging bitline: per-replica, with
        # a token wire cap so it is not a floating island.
        dump = f"{prefix}_dump{k}"
        circuit.add_capacitor(dump, "0", 1e-17, name=f"{dump}.wire")
        nodes = instantiate_cell(
            circuit,
            cell,
            prefix=f"{prefix}_c{k}_",
            node_map={
                "blb": far,
                "bl": dump,
                "wl": wordline_node,
                "vddc": "vddc",
                "vgnd": "vgnd",
            },
        )
        ics[nodes["q"]] = storage_ic["q"]
        ics[nodes["qb"]] = storage_ic["qb"]
        ics[dump] = precharge_level
        widths += [
            cell.sizing.pulldown_width * 2,
            cell.sizing.pullup_width * 2,
            cell.sizing.access_width * 2,
        ]

    # Skewed inverter on the near end: output rises as the replica
    # line droops past the (high) switching threshold.
    enable = f"{prefix}_sen"
    near = f"{prefix}_0"
    builder = CellBuilder(circuit)
    builder.add_device(f"{prefix}_inv_pu", enable, near, vdd_node, pmos_device(), "p", SENSE_INV_PMOS)
    builder.add_device(f"{prefix}_inv_pd", enable, near, "0", nmos_device(), "n", SENSE_INV_NMOS)
    widths += [SENSE_INV_PMOS, SENSE_INV_NMOS]
    ics[enable] = 0.0

    # Enable complement for the sampling pass gates.
    sample = f"{prefix}_smp"
    builder.add_device(f"{prefix}_smp_pu", sample, enable, vdd_node, pmos_device(), "p", 0.3)
    builder.add_device(f"{prefix}_smp_pd", sample, enable, "0", nmos_device(), "n", 0.2)
    widths += [0.3, 0.2]
    ics[sample] = vdd

    return ReplicaPath(
        rbl_near=f"{prefix}_0",
        enable_node=enable,
        sample_node=sample,
        n_replica=n_replica,
        initial_conditions=ics,
        device_widths=tuple(widths),
    )


def _cell_bitline_junction_cap(cell) -> float:
    """Drain-side capacitance one explicit cell stamps on its bitline
    (the access device's junction cap), delegated out of the ladder tap."""
    from repro.sram.cell import JUNCTION_CAP_PER_UM

    return JUNCTION_CAP_PER_UM * cell.sizing.access_width
