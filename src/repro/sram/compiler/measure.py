"""Transient measurement of compiled critical paths.

:func:`measure_array` runs one compiled path through the transient
solver (sparse MNA auto-selected once the composed netlist crosses the
64-unknown threshold) and extracts the scenario's figures of merit:

* **read** — the delay decomposition ``address edge -> wordline at the
  far cell -> sense-threshold bitline split -> resolved sense-amp
  output``, plus the access energy;
* **write** — address edge to the storage-node crossing of the far
  cell, plus the access energy;
* **half_select** — the disturb margin of the same-row victim cell
  (minimum ``q - qb`` separation during the access) and whether it
  flipped.

:func:`compare_array` is the dual-source validation behind fig11 and
tab_area: the same geometry evaluated analytically
(:func:`repro.sram.array.plan_array`) and by compiled-path simulation,
with the agreement ratios callers gate against documented tolerances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.energy import delivered_energy, operation_energy
from repro.analysis.timing import SENSE_THRESHOLD
from repro.circuit.sparse import HAVE_SPARSE
from repro.circuit.transient import TransientOptions, simulate_transient
from repro.sram.array import ArrayGeometry, _BitlineScaledCell, plan_array
from repro.sram.assist import Assist
from repro.sram.compiler.census import census_macro_area
from repro.sram.compiler.column import CompiledArray, CompileOptions, compile_array

__all__ = ["ArrayMeasurement", "ArrayComparison", "measure_array", "compare_array"]


@dataclass(frozen=True)
class ArrayMeasurement:
    """Figures of merit of one simulated critical path."""

    scenario: str
    rows: int
    columns: int
    vdd: float
    unknowns: int
    sparse_engaged: bool
    """Whether the auto-selection served this netlist sparse MNA."""

    wordline_delay: float
    """Address edge to the wordline reaching half swing at the far cell."""

    access_delay: float
    """Address edge to the scenario's completion event: sense-threshold
    bitline split (read), storage-node crossing (write/half_select).
    ``inf`` when the event never happens."""

    resolved_delay: float
    """Read only: address edge to the sense-amp outputs separating by
    half V_DD (``inf`` when unresolved / no sense amp); ``nan`` for
    writes."""

    energy: float
    """Whole-path access energy (J) — cell, decoder, precharge,
    replica, sense amp — hold-leakage baseline subtracted."""

    cell_energy: float
    """Energy drawn through the accessed cell's dedicated rail sources
    alone (J) — the number comparable to the analytic cell-level model."""

    disturb_margin: float
    """Half-select victim's minimum ``q - qb`` during the access (V);
    ``nan`` when no victim was compiled."""

    victim_flipped: bool
    """Whether the half-selected victim lost its state."""

    @property
    def completed(self) -> bool:
        return math.isfinite(self.access_delay)


@dataclass(frozen=True)
class ArrayComparison:
    """Analytic vs compiled-simulation agreement on one geometry."""

    geometry: ArrayGeometry
    vdd: float
    analytic_access_time: float
    simulated_access_time: float
    analytic_energy: float
    """Cell-level read energy from the analytic plan (all bench sources)."""

    simulated_energy: float
    """Whole compiled path, periphery included — expect this well above
    the analytic number; the apples-to-apples pair is the next two."""

    analytic_cell_energy: float
    """Rails-only energy of the analytic lumped-bitline cell bench."""

    simulated_cell_energy: float
    """Rails-only energy of the accessed cell inside the compiled path."""

    analytic_area_um2: float
    census_area_um2: float
    measurement: ArrayMeasurement | None = None
    """The simulated side's full measurement (unknown count, sparse
    engagement, delay decomposition)."""

    @property
    def delay_ratio(self) -> float:
        return self.simulated_access_time / self.analytic_access_time

    @property
    def energy_ratio(self) -> float:
        return self.simulated_energy / self.analytic_energy

    @property
    def cell_energy_ratio(self) -> float:
        return self.simulated_cell_energy / self.analytic_cell_energy

    @property
    def area_ratio(self) -> float:
        return self.census_area_um2 / self.analytic_area_um2


def _threshold_crossing(times, signal, threshold, after):
    """First time ``signal >= threshold`` holds, linearly interpolated;
    ``inf`` when it never does."""
    mask = times >= after
    t = times[mask]
    s = signal[mask]
    above = np.nonzero(s >= threshold)[0]
    if above.size == 0:
        return math.inf
    k = int(above[0])
    if k == 0:
        return float(t[0])
    frac = (threshold - s[k - 1]) / (s[k] - s[k - 1])
    return float(t[k - 1] + frac * (t[k] - t[k - 1]))


def measure_array(
    compiled: CompiledArray,
    settle: float = 1.0e-9,
    options: TransientOptions | None = None,
) -> ArrayMeasurement:
    """Simulate one compiled path and extract its figures of merit."""
    options = options or TransientOptions()
    bench = compiled.bench
    t_addr = bench.notes["t_addr"]
    t_stop = bench.settle_stop(settle)
    result = simulate_transient(
        bench.circuit, t_stop,
        initial_conditions=bench.initial_conditions,
        options=options,
    )
    probes = compiled.probes
    cell, vdd = compiled.cell, compiled.vdd

    # Wordline arrival at the far cell: half swing toward the active level.
    wl_sig = np.abs(result.voltage(probes["wl_far"]) - cell.wl_inactive(vdd))
    half_swing = 0.5 * abs(cell.wl_active(vdd) - cell.wl_inactive(vdd))
    t_wl = _threshold_crossing(result.times, wl_sig, half_swing, t_addr)
    wordline_delay = t_wl - t_addr if math.isfinite(t_wl) else math.inf

    if compiled.scenario == "read":
        split = np.abs(
            result.voltage(probes["bl_near"]) - result.voltage(probes["blb_near"])
        )
        t_event = _threshold_crossing(result.times, split, SENSE_THRESHOLD, t_addr)
        resolved = math.nan
        if "sa_out" in probes:
            sa_split = np.abs(
                result.voltage(probes["sa_out"]) - result.voltage(probes["sa_outb"])
            )
            t_res = _threshold_crossing(result.times, sa_split, 0.5 * vdd, t_addr)
            resolved = t_res - t_addr if math.isfinite(t_res) else math.inf
    else:
        t_event = result.crossing_time(probes["q"], probes["qb"], after=t_addr)
        t_event = math.inf if t_event is None else t_event
        resolved = math.nan
    access_delay = t_event - t_addr if math.isfinite(t_event) else math.inf

    # Incremental access energy (the operation_energy recipe, applied to
    # the already-computed result), whole-path and cell-rails-only.
    quiet_end = min(t_addr * 0.2, 5e-11)

    def _incremental(source_names=None):
        gross = delivered_energy(result, 0.0, t_stop, source_names=source_names)
        leak = delivered_energy(
            result, 0.0, quiet_end, source_names=source_names
        ) / quiet_end
        return gross - leak * t_stop

    energy = _incremental()
    cell_energy = _incremental({"sel_vddc", "sel_vgnd"})

    disturb = math.nan
    flipped = False
    if "hs_q" in probes:
        disturb = result.min_difference(
            probes["hs_q"], probes["hs_qb"], t_addr, bench.window.t_off
        )
        flipped = result.final(probes["hs_q"]) < result.final(probes["hs_qb"])

    size = compiled.unknown_count
    sparse = (
        HAVE_SPARSE
        and options.solver.matrix_format != "dense"
        and (
            options.solver.matrix_format == "sparse"
            or size >= options.solver.sparse_threshold
        )
    )
    return ArrayMeasurement(
        scenario=compiled.scenario,
        rows=compiled.geometry.rows,
        columns=compiled.geometry.columns,
        vdd=vdd,
        unknowns=size,
        sparse_engaged=sparse,
        wordline_delay=wordline_delay,
        access_delay=access_delay,
        resolved_delay=resolved,
        energy=energy,
        cell_energy=cell_energy,
        disturb_margin=disturb,
        victim_flipped=flipped,
    )


def compare_array(
    cell,
    geometry: ArrayGeometry,
    vdd: float,
    assist: Assist | None = None,
    options: CompileOptions | None = None,
    transient_options: TransientOptions | None = None,
) -> ArrayComparison:
    """Dual-source evaluation of a read on one geometry.

    The analytic side is :func:`repro.sram.array.plan_array` (lumped
    bitline, flat decode time, overhead-fraction area); the simulated
    side is the compiled critical path and its device census.  The two
    read delays measure the *same* event — address edge to a
    ``SENSE_THRESHOLD`` bitline split — so the ratio isolates genuine
    modelling differences (distributed RC, real decode chain, explicit
    neighbours), not definition mismatches.
    """
    options = options or CompileOptions()
    estimate = plan_array(
        cell, geometry, vdd, read_assist=assist, read_duration=options.duration
    )
    # Rails-only analytic energy: the same lumped-bitline bench the
    # plan simulated, integrated over the cell rail sources alone so it
    # pairs with the compiled path's dedicated-rail measurement.
    rails_bench = _BitlineScaledCell(cell, geometry.bitline_capacitance).read_testbench(
        vdd, assist=assist, duration=options.duration
    )
    analytic_cell_energy = operation_energy(
        rails_bench, options=transient_options, source_names={"vddc", "vgnd"}
    )
    compiled = compile_array(
        cell, geometry, vdd, scenario="read", assist=assist, options=options
    )
    measured = measure_array(compiled, options=transient_options)
    areas = census_macro_area(cell, geometry, compiled.census)
    return ArrayComparison(
        geometry=geometry,
        vdd=vdd,
        analytic_access_time=estimate.read_access_time,
        simulated_access_time=measured.access_delay,
        analytic_energy=estimate.read_energy_per_access,
        simulated_energy=measured.energy,
        analytic_cell_energy=analytic_cell_energy,
        simulated_cell_energy=measured.cell_energy,
        analytic_area_um2=estimate.area_um2,
        census_area_um2=areas["total_um2"],
        measurement=measured,
    )
