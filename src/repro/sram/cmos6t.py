"""The 6T CMOS SRAM baseline (32 nm PTM-like devices).

Standard topology of the paper's Fig. 3: cross-coupled inverters
(M1/M2 and M4/M5) plus two nMOS access transistors (M3/M6) with
active-high wordline.  MOSFETs conduct in both directions, which is
exactly the property the TFET cells lack.
"""

from __future__ import annotations

from repro.devices.library import nmos_device, pmos_device
from repro.devices.mosfet import MosfetModel
from repro.sram.base import SixTCellBase
from repro.sram.cell import CellBuilder, CellSizing

__all__ = ["Cmos6TCell"]


class Cmos6TCell(SixTCellBase):
    """6T CMOS cell; the paper's performance/reliability reference."""

    name = "6T CMOS"

    def __init__(
        self,
        sizing: CellSizing | None = None,
        nmos: MosfetModel | None = None,
        pmos: MosfetModel | None = None,
    ):
        super().__init__(sizing or CellSizing())
        self.nmos = nmos or nmos_device()
        self.pmos = pmos or pmos_device()

    def _build_core(self, builder: CellBuilder) -> None:
        s = self.sizing
        # Left inverter drives q, right inverter drives qb.
        builder.add_device("m1_pd", "q", "qb", "vgnd", self.nmos, "n", s.pulldown_width)
        builder.add_device("m2_pu", "q", "qb", "vddc", self.pmos, "p", s.pullup_width)
        builder.add_device("m4_pd", "qb", "q", "vgnd", self.nmos, "n", s.pulldown_width)
        builder.add_device("m5_pu", "qb", "q", "vddc", self.pmos, "p", s.pullup_width)
        # nMOS access devices; drain/source assignment is immaterial for
        # the symmetric MOSFET model.
        builder.add_device("m3_ax", "q", "wl", "bl", self.nmos, "n", s.access_width)
        builder.add_device("m6_ax", "qb", "wl", "blb", self.nmos, "n", s.access_width)

    def wl_inactive(self, vdd: float) -> float:
        return 0.0

    def wl_active(self, vdd: float) -> float:
        return vdd
