"""Write-assist (WA) and read-assist (RA) techniques of Section 4.

All eight techniques move one voltage by the same fixed fraction of
V_DD (the paper uses 30 % for fair comparison) during the access
window:

====================  ========  =========
technique             target    direction
====================  ========  =========
V_DD lowering (WA)    vddc      down
V_GND raising (WA)    vgnd      up
wordline lowering(WA) wl        down
bitline raising (WA)  bl        up
V_DD raising (RA)     vddc      up
V_GND lowering (RA)   vgnd      down
wordline raising (RA) wl        up
bitline lowering (RA) bl        down
====================  ========  =========

Wordline *lowering* assists writes here — the opposite of a CMOS SRAM —
because the inward-pTFET access transistor is active-low: a lower gate
increases |V_GS| and with it the drive strength.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.waveforms import Constant, Pulse, Waveform

__all__ = [
    "Assist",
    "AccessWindow",
    "WRITE_ASSISTS",
    "READ_ASSISTS",
    "ALL_ASSISTS",
    "DEFAULT_ASSIST_FRACTION",
]

DEFAULT_ASSIST_FRACTION = 0.3

ASSIST_LEAD_TIME = 2e-11
"""Wordline/bitline assist levels assert this long before the access."""

RAIL_ASSIST_LEAD_TIME = 6e-10
"""Cell-rail (V_DD / V_GND) assists assert well before the wordline.

A TFET storage node can only follow a collapsing supply rail through
the pull-up's *reverse* gated conduction (tens of nanoamps), so the
rail must droop ahead of the wordline — consistent with the paper's
Fig. 6/7 timing diagrams, where the rail windows envelop the wordline
pulse."""


@dataclass(frozen=True)
class AccessWindow:
    """The time interval during which the cell is accessed."""

    t_on: float
    t_off: float

    def __post_init__(self) -> None:
        if self.t_off <= self.t_on:
            raise ValueError("access window must have positive duration")


@dataclass(frozen=True)
class Assist:
    """One voltage-level assist technique."""

    name: str
    kind: str  # "write" or "read"
    target: str  # "vdd", "vgnd", "wl", or "bl"
    sign: float  # +1 raises the level, -1 lowers it
    fraction: float = DEFAULT_ASSIST_FRACTION

    def __post_init__(self) -> None:
        if self.kind not in ("write", "read"):
            raise ValueError(f"kind must be 'write' or 'read', got {self.kind!r}")
        if self.target not in ("vdd", "vgnd", "wl", "bl"):
            raise ValueError(f"unknown assist target {self.target!r}")
        if self.sign not in (1.0, -1.0):
            raise ValueError("sign must be +1 or -1")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must lie in (0, 1)")

    def delta(self, vdd: float) -> float:
        """Signed voltage offset applied while the assist is active."""
        return self.sign * self.fraction * vdd

    # -- waveform helpers consumed by the testbench builders -----------------

    @property
    def lead_time(self) -> float:
        """How long before the wordline the assist level asserts."""
        if self.target in ("vdd", "vgnd"):
            return RAIL_ASSIST_LEAD_TIME
        return ASSIST_LEAD_TIME

    def _pulsed(self, base: float, vdd: float, window: AccessWindow) -> Waveform:
        start = window.t_on - self.lead_time
        if start <= 0.0:
            raise ValueError("access window leaves no room for the assist lead time")
        width = (window.t_off - window.t_on) + self.lead_time + ASSIST_LEAD_TIME
        return Pulse(base=base, active=base + self.delta(vdd), t_start=start, width=width)

    def vdd_rail(self, vdd: float, window: AccessWindow) -> Waveform:
        """Cell-supply waveform (V_DD lowering/raising techniques)."""
        if self.target != "vdd":
            return Constant(vdd)
        return self._pulsed(vdd, vdd, window)

    def gnd_rail(self, vdd: float, window: AccessWindow) -> Waveform:
        """Cell-ground waveform (V_GND raising/lowering techniques)."""
        if self.target != "vgnd":
            return Constant(0.0)
        return self._pulsed(0.0, vdd, window)

    def wl_active_level(self, base_active: float, vdd: float) -> float:
        """Wordline active level (wordline lowering/raising techniques)."""
        if self.target != "wl":
            return base_active
        return base_active + self.delta(vdd)

    def bitline_level(self, base_level: float, vdd: float) -> float:
        """Driven/precharged bitline level (bitline raising/lowering)."""
        if self.target != "bl":
            return base_level
        return base_level + self.delta(vdd)


WRITE_ASSISTS: dict[str, Assist] = {
    "vdd_lowering": Assist("vdd_lowering", "write", "vdd", -1.0),
    "vgnd_raising": Assist("vgnd_raising", "write", "vgnd", +1.0),
    "wl_lowering": Assist("wl_lowering", "write", "wl", -1.0),
    "bl_raising": Assist("bl_raising", "write", "bl", +1.0),
}

READ_ASSISTS: dict[str, Assist] = {
    "vdd_raising": Assist("vdd_raising", "read", "vdd", +1.0),
    "vgnd_lowering": Assist("vgnd_lowering", "read", "vgnd", -1.0),
    "wl_raising": Assist("wl_raising", "read", "wl", +1.0),
    "bl_lowering": Assist("bl_lowering", "read", "bl", -1.0),
}

ALL_ASSISTS: dict[str, Assist] = {**WRITE_ASSISTS, **READ_ASSISTS}
