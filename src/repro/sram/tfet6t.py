"""The 6T TFET SRAM with all four access-transistor configurations.

This is the paper's Section 3 study object.  The cross-coupled
inverters always use forward-biased TFETs (nTFET pull-downs, pTFET
pull-ups); the four access choices of Fig. 3(b)-(e) differ in device
polarity and *orientation*:

* **inward** devices conduct from the bitline into the storage node
  (they can only charge the node);
* **outward** devices conduct from the storage node into the bitline
  (they can only discharge it).

Orientation is set purely by which terminal is the drain:  an nTFET
conducts drain→source, a pTFET source→drain.
"""

from __future__ import annotations

from enum import Enum

from repro.devices.library import tfet_device
from repro.sram.base import SixTCellBase
from repro.sram.cell import CellBuilder, CellSizing, TfetDeviceSet

__all__ = ["AccessConfig", "Tfet6TCell"]


class AccessConfig(Enum):
    """The four access-transistor choices of the paper's Fig. 3."""

    INWARD_N = "inward_n"
    INWARD_P = "inward_p"
    OUTWARD_N = "outward_n"
    OUTWARD_P = "outward_p"

    @property
    def polarity(self) -> str:
        return "n" if self.value.endswith("_n") else "p"

    @property
    def is_inward(self) -> bool:
        return self.value.startswith("inward")


class Tfet6TCell(SixTCellBase):
    """6T TFET cell parameterized by the access configuration.

    The paper's proposed cell is ``AccessConfig.INWARD_P`` — the only
    configuration that holds with low static power *and* can both be
    written (for beta <= 1) and read.
    """

    def __init__(
        self,
        sizing: CellSizing | None = None,
        access: AccessConfig = AccessConfig.INWARD_P,
        devices: TfetDeviceSet | None = None,
    ):
        super().__init__(sizing or CellSizing())
        self.access = access
        self.devices = devices or TfetDeviceSet.uniform(tfet_device())
        self.name = f"6T TFET ({access.value} access)"

    def _build_core(self, builder: CellBuilder) -> None:
        s = self.sizing
        d = self.devices
        builder.add_device("m1_pd", "q", "qb", "vgnd", d.pulldown_left, "n", s.pulldown_width)
        builder.add_device("m2_pu", "q", "qb", "vddc", d.pullup_left, "p", s.pullup_width)
        builder.add_device("m4_pd", "qb", "q", "vgnd", d.pulldown_right, "n", s.pulldown_width)
        builder.add_device("m5_pu", "qb", "q", "vddc", d.pullup_right, "p", s.pullup_width)
        self._add_access(builder, "m3_ax", "q", "bl", d.access_left, s.access_width)
        self._add_access(builder, "m6_ax", "qb", "blb", d.access_right, s.access_width)

    def _add_access(
        self, builder: CellBuilder, name: str, node: str, bitline: str, model, width: float
    ) -> None:
        polarity = self.access.polarity
        if self.access.is_inward:
            # Conduction bitline -> node: nTFET needs its drain at the
            # bitline; pTFET needs its source there.
            if polarity == "n":
                builder.add_device(name, bitline, "wl", node, model, "n", width)
            else:
                builder.add_device(name, node, "wl", bitline, model, "p", width)
        else:
            # Conduction node -> bitline.
            if polarity == "n":
                builder.add_device(name, node, "wl", bitline, model, "n", width)
            else:
                builder.add_device(name, bitline, "wl", node, model, "p", width)

    def wl_inactive(self, vdd: float) -> float:
        return vdd if self.access.polarity == "p" else 0.0

    def wl_active(self, vdd: float) -> float:
        return 0.0 if self.access.polarity == "p" else vdd
