"""Base class for 6T-style SRAM cells (two bitlines, one wordline).

Subclasses provide the core transistors via :meth:`_build_core` and the
wordline polarity; hold/read/write testbench construction — including
every assist technique of Section 4 — is shared here.

All testbenches put the cell in the canonical state q = 1, qb = 0 and,
for writes, flip it to q = 0 (bl driven low, blb driven high).  For the
unidirectional TFET cells this is fully general: the cell and the drive
are mirror-symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.charges import LinearCharge
from repro.sram.assist import AccessWindow, Assist
from repro.sram.cell import CellBuilder, CellSizing
from repro.sram.testbench import (
    BITLINE_CAPACITANCE,
    DEFAULT_ACCESS_START,
    Testbench,
)

__all__ = ["SixTCellBase"]


class SixTCellBase:
    """Common scaffolding for two-bitline, single-wordline cells."""

    #: Human-readable cell name, set by subclasses.
    name: str = "6T"

    def __init__(self, sizing: CellSizing):
        self.sizing = sizing

    # -- subclass hooks --------------------------------------------------------

    def _build_core(self, builder: CellBuilder) -> None:
        """Add the cell transistors (nodes q, qb, bl, blb, wl, vddc, vgnd)."""
        raise NotImplementedError

    def wl_inactive(self, vdd: float) -> float:
        """Wordline level that keeps the access transistors off."""
        raise NotImplementedError

    def wl_active(self, vdd: float) -> float:
        """Wordline level that turns the access transistors on."""
        raise NotImplementedError

    # -- shared construction -----------------------------------------------------

    def _new_circuit(self, label: str) -> tuple[Circuit, CellBuilder]:
        circuit = Circuit(f"{self.name} {label}")
        builder = CellBuilder(circuit)
        self._build_core(builder)
        builder.add_storage_wire_caps()
        return circuit, builder

    def _storage_ic(self, vdd: float) -> dict[str, float]:
        return {"q": vdd, "qb": 0.0, "vddc": vdd, "vgnd": 0.0}

    def hold_testbench(self, vdd: float, stored_one: bool = True) -> Testbench:
        """Hold condition: wordline off, both bitlines clamped at V_DD.

        ``stored_one`` selects the held state (q = 1 by default); the
        asymmetric cell's leakage depends on it.
        """
        circuit, _ = self._new_circuit("hold")
        circuit.add_voltage_source("vddc", "vddc", "0", vdd)
        circuit.add_voltage_source("vgnd", "vgnd", "0", 0.0)
        circuit.add_voltage_source("wl", "wl", "0", self.wl_inactive(vdd))
        circuit.add_voltage_source("bl", "bl", "0", vdd)
        circuit.add_voltage_source("blb", "blb", "0", vdd)
        ic = self._storage_ic(vdd)
        if not stored_one:
            ic["q"], ic["qb"] = ic["qb"], ic["q"]
        window = AccessWindow(DEFAULT_ACCESS_START, DEFAULT_ACCESS_START + 1e-9)
        return Testbench(circuit, ic, window)

    def read_testbench(
        self,
        vdd: float,
        assist: Assist | None = None,
        duration: float = 1.0e-9,
        t_on: float = DEFAULT_ACCESS_START,
        bitline_capacitance: float = BITLINE_CAPACITANCE,
    ) -> Testbench:
        """Dynamic read: bitlines precharged and floating, wordline pulsed.

        ``bitline_capacitance`` scales with the number of rows sharing
        the column (see :mod:`repro.sram.array`).
        """
        self._check_assist(assist, "read")
        circuit, _ = self._new_circuit("read")
        window = AccessWindow(t_on, t_on + duration)

        self._add_rails(circuit, vdd, assist, window)
        wl_on = self.wl_active(vdd)
        if assist is not None:
            wl_on = assist.wl_active_level(wl_on, vdd)
        circuit.add_voltage_source(
            "wl", "wl", "0",
            Pulse(self.wl_inactive(vdd), wl_on, t_start=t_on, width=duration),
        )
        precharge = vdd
        if assist is not None:
            precharge = assist.bitline_level(vdd, vdd)
        circuit.add_capacitor("bl", "0", LinearCharge(bitline_capacitance), name="cbl")
        circuit.add_capacitor("blb", "0", LinearCharge(bitline_capacitance), name="cblb")

        ic = self._storage_ic(vdd)
        ic["bl"] = precharge
        ic["blb"] = precharge
        ic["wl"] = self.wl_inactive(vdd)
        return Testbench(
            circuit,
            ic,
            window,
            read_bitline="blb",
            read_reference="bl",
            precharge_level=precharge,
        )

    def write_testbench(
        self,
        vdd: float,
        pulse_width: float,
        assist: Assist | None = None,
        t_on: float = DEFAULT_ACCESS_START,
    ) -> Testbench:
        """Write the opposite state: bl driven low, blb driven high."""
        self._check_assist(assist, "write")
        circuit, _ = self._new_circuit("write")
        window = AccessWindow(t_on, t_on + pulse_width)

        self._add_rails(circuit, vdd, assist, window)
        wl_on = self.wl_active(vdd)
        if assist is not None:
            wl_on = assist.wl_active_level(wl_on, vdd)
        circuit.add_voltage_source(
            "wl", "wl", "0",
            Pulse(self.wl_inactive(vdd), wl_on, t_start=t_on, width=pulse_width),
        )
        high_level = vdd
        if assist is not None:
            high_level = assist.bitline_level(vdd, vdd)
        circuit.add_voltage_source("bl", "bl", "0", 0.0)
        circuit.add_voltage_source(
            "blb", "blb", "0",
            Pulse(vdd, high_level, t_start=window.t_on, width=pulse_width)
            if high_level != vdd
            else vdd,
        )

        ic = self._storage_ic(vdd)
        ic["wl"] = self.wl_inactive(vdd)
        return Testbench(circuit, ic, window)

    def write_bench_factory(
        self,
        vdd: float,
        assist: Assist | None = None,
        t_on: float = DEFAULT_ACCESS_START,
    ):
        """A ``pulse_width -> Testbench`` factory sharing one built circuit.

        The WL_crit bisection simulates the same cell a dozen-plus
        times with only the pulse widths changed; rebuilding the
        netlist per width is pure overhead in the Monte-Carlo hot loop.
        This builds :meth:`write_testbench` once and swaps the
        wordline (and, when the assist moves it, the blb) pulse per
        call — the waveform-swap idiom the MNA source caches key on —
        so each returned bench is value-identical to a fresh
        ``write_testbench(vdd, width, assist)``.
        """
        base = self.write_testbench(vdd, 1.0, assist=assist, t_on=t_on)
        circuit = base.circuit
        wl_m = circuit.source_index("wl")
        wl_src = circuit.voltage_sources[wl_m]
        wl_off = self.wl_inactive(vdd)
        wl_on = self.wl_active(vdd)
        high_level = vdd
        if assist is not None:
            wl_on = assist.wl_active_level(wl_on, vdd)
            high_level = assist.bitline_level(vdd, vdd)
        blb_m = blb_src = None
        if high_level != vdd:
            blb_m = circuit.source_index("blb")
            blb_src = circuit.voltage_sources[blb_m]

        def factory(pulse_width: float) -> Testbench:
            circuit.voltage_sources[wl_m] = type(wl_src)(
                wl_src.a,
                wl_src.b,
                Pulse(wl_off, wl_on, t_start=t_on, width=pulse_width),
                wl_src.name,
            )
            if blb_m is not None:
                circuit.voltage_sources[blb_m] = type(blb_src)(
                    blb_src.a,
                    blb_src.b,
                    Pulse(vdd, high_level, t_start=t_on, width=pulse_width),
                    blb_src.name,
                )
            window = AccessWindow(t_on, t_on + pulse_width)
            return Testbench(circuit, base.initial_conditions, window)

        return factory

    # -- helpers ----------------------------------------------------------------

    def _add_rails(
        self, circuit: Circuit, vdd: float, assist: Assist | None, window: AccessWindow
    ) -> None:
        if assist is None:
            circuit.add_voltage_source("vddc", "vddc", "0", vdd)
            circuit.add_voltage_source("vgnd", "vgnd", "0", 0.0)
        else:
            circuit.add_voltage_source("vddc", "vddc", "0", assist.vdd_rail(vdd, window))
            circuit.add_voltage_source("vgnd", "vgnd", "0", assist.gnd_rail(vdd, window))

    @staticmethod
    def _check_assist(assist: Assist | None, operation: str) -> None:
        if assist is not None and assist.kind != operation:
            raise ValueError(
                f"{assist.name} is a {assist.kind} assist; cannot apply it to a "
                f"{operation} operation"
            )
