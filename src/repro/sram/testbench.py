"""Testbench description returned by the cell builders.

A testbench bundles the circuit, the initial state that selects one
branch of the bistable cell, and the metadata the analysis layer needs
(access window, which node stores the 1, which bitline develops the
read signal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.sram.assist import AccessWindow

__all__ = ["Testbench", "BITLINE_CAPACITANCE", "DEFAULT_ACCESS_START"]

BITLINE_CAPACITANCE = 5e-15
"""Bitline capacitance in farads (short local-array segment)."""

DEFAULT_ACCESS_START = 8.0e-10
"""Default wordline activation time; leaves room for the rail-assist lead-in."""


@dataclass(frozen=True)
class Testbench:
    """A ready-to-simulate SRAM operation."""

    circuit: Circuit
    initial_conditions: dict[str, float]
    window: AccessWindow
    one_node: str = "q"
    zero_node: str = "qb"
    read_bitline: str | None = None
    """Bitline on which the read signal develops (None for writes)."""

    read_reference: str | None = None
    """Complement bitline, or None for a single-ended read port."""

    precharge_level: float = 0.0
    """Bitline precharge voltage for read operations."""

    notes: dict[str, float] = field(default_factory=dict)

    def settle_stop(self, settle: float = 1.5e-9) -> float:
        """A simulation end time comfortably past the access window."""
        return self.window.t_off + settle
