"""7T TFET SRAM with a decoupled read port (after Kim et al., ISLPED 2009).

The second comparison cell of Section 5.  Structure reproduced from the
paper's description:

* the storage core uses **outward nTFET write access** transistors on a
  dedicated write wordline/bitline pair (``wwl``, ``wbl``/``wblb``) —
  outward devices discharge the node storing 1, which is how the write
  completes;
* the **write bitlines are held at 0 V during hold**, so the outward
  access transistors are never reverse-biased and the cell keeps the
  TFET leakage floor (this is the paper's explanation for why the 7T
  avoids the asymmetric cell's static-power penalty);
* a **single-transistor read buffer** (the 7th device) discharges a
  separate read bitline ``rbl`` through a read source line ``rsl`` that
  is pulled low during reads, leaving the storage nodes untouched —
  hence the cell's high read margin, at a 10-15 % area cost.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.charges import LinearCharge
from repro.devices.library import tfet_device
from repro.sram.assist import AccessWindow, Assist
from repro.sram.cell import CellBuilder, CellSizing, TfetDeviceSet
from repro.sram.testbench import (
    BITLINE_CAPACITANCE,
    DEFAULT_ACCESS_START,
    Testbench,
)

__all__ = ["Tfet7TCell"]


class Tfet7TCell:
    """7T TFET cell with separate write and read ports."""

    name = "7T TFET"

    DEFAULT_SIZING = CellSizing(access_width=0.12, pulldown_width=0.1, pullup_width=0.09)
    """Write access must overpower the pull-up: with outward access the
    write contest is access-vs-pull-up (as in a CMOS cell), so the 7T
    is sized with wide write access and a weak pull-up."""

    def __init__(
        self,
        sizing: CellSizing | None = None,
        devices: TfetDeviceSet | None = None,
        read_buffer_width: float | None = None,
    ):
        self.sizing = sizing or self.DEFAULT_SIZING
        self.devices = devices or TfetDeviceSet.uniform(tfet_device())
        if self.devices.read_buffer is None:
            raise ValueError("the 7T cell needs a read-buffer device card")
        self.read_buffer_width = read_buffer_width or self.sizing.access_width

    def transistor_count(self) -> int:
        return 7

    # -- construction -----------------------------------------------------------

    def _new_circuit(self, label: str) -> Circuit:
        circuit = Circuit(f"{self.name} {label}")
        builder = CellBuilder(circuit)
        s = self.sizing
        d = self.devices
        builder.add_device("m1_pd", "q", "qb", "vgnd", d.pulldown_left, "n", s.pulldown_width)
        builder.add_device("m2_pu", "q", "qb", "vddc", d.pullup_left, "p", s.pullup_width)
        builder.add_device("m4_pd", "qb", "q", "vgnd", d.pulldown_right, "n", s.pulldown_width)
        builder.add_device("m5_pu", "qb", "q", "vddc", d.pullup_right, "p", s.pullup_width)
        # Outward write access: drain at the storage node, source at the
        # write bitline, so the device can only pull the node down.
        builder.add_device("m3_wax", "q", "wwl", "wbl", d.access_left, "n", s.access_width)
        builder.add_device("m6_wax", "qb", "wwl", "wblb", d.access_right, "n", s.access_width)
        # Read buffer: discharges rbl into rsl when q stores 1 and rsl
        # is pulled low.
        builder.add_device(
            "m7_rd", "rbl", "q", "rsl", d.read_buffer, "n", self.read_buffer_width
        )
        builder.add_storage_wire_caps()
        return circuit

    def _storage_ic(self, vdd: float) -> dict[str, float]:
        return {"q": vdd, "qb": 0.0, "vddc": vdd, "vgnd": 0.0}

    def hold_testbench(self, vdd: float, stored_one: bool = True) -> Testbench:
        """Hold: write bitlines grounded, read port quiescent."""
        circuit = self._new_circuit("hold")
        circuit.add_voltage_source("vddc", "vddc", "0", vdd)
        circuit.add_voltage_source("vgnd", "vgnd", "0", 0.0)
        circuit.add_voltage_source("wwl", "wwl", "0", 0.0)
        circuit.add_voltage_source("wbl", "wbl", "0", 0.0)
        circuit.add_voltage_source("wblb", "wblb", "0", 0.0)
        circuit.add_voltage_source("rbl", "rbl", "0", vdd)
        circuit.add_voltage_source("rsl", "rsl", "0", vdd)
        ic = self._storage_ic(vdd)
        if not stored_one:
            ic["q"], ic["qb"] = ic["qb"], ic["q"]
        window = AccessWindow(DEFAULT_ACCESS_START, DEFAULT_ACCESS_START + 1e-9)
        return Testbench(circuit, ic, window)

    def read_testbench(
        self,
        vdd: float,
        assist: Assist | None = None,
        duration: float = 1.0e-9,
        t_on: float = DEFAULT_ACCESS_START,
    ) -> Testbench:
        """Decoupled read: rsl pulses low, rbl discharges through m7."""
        if assist is not None:
            raise ValueError("the 7T cell's read port does not take assist techniques")
        circuit = self._new_circuit("read")
        window = AccessWindow(t_on, t_on + duration)
        circuit.add_voltage_source("vddc", "vddc", "0", vdd)
        circuit.add_voltage_source("vgnd", "vgnd", "0", 0.0)
        circuit.add_voltage_source("wwl", "wwl", "0", 0.0)
        circuit.add_voltage_source("wbl", "wbl", "0", 0.0)
        circuit.add_voltage_source("wblb", "wblb", "0", 0.0)
        circuit.add_voltage_source(
            "rsl", "rsl", "0", Pulse(vdd, 0.0, t_start=t_on, width=duration)
        )
        circuit.add_capacitor("rbl", "0", LinearCharge(BITLINE_CAPACITANCE), name="crbl")

        ic = self._storage_ic(vdd)
        ic["rbl"] = vdd
        ic["rsl"] = vdd
        return Testbench(
            circuit,
            ic,
            window,
            read_bitline="rbl",
            read_reference=None,
            precharge_level=vdd,
        )

    def write_testbench(
        self,
        vdd: float,
        pulse_width: float,
        assist: Assist | None = None,
        t_on: float = DEFAULT_ACCESS_START,
    ) -> Testbench:
        """Write q = 1 -> 0: wbl stays low, wblb raised so m6 stays off."""
        if assist is not None:
            raise ValueError("the 7T comparison cell is simulated without assists")
        circuit = self._new_circuit("write")
        window = AccessWindow(t_on, t_on + pulse_width)
        circuit.add_voltage_source("vddc", "vddc", "0", vdd)
        circuit.add_voltage_source("vgnd", "vgnd", "0", 0.0)
        circuit.add_voltage_source(
            "wwl", "wwl", "0", Pulse(0.0, vdd, t_start=t_on, width=pulse_width)
        )
        circuit.add_voltage_source("wbl", "wbl", "0", 0.0)
        circuit.add_voltage_source(
            "wblb", "wblb", "0", Pulse(0.0, vdd, t_start=t_on, width=pulse_width)
        )
        circuit.add_voltage_source("rbl", "rbl", "0", vdd)
        circuit.add_voltage_source("rsl", "rsl", "0", vdd)

        ic = self._storage_ic(vdd)
        return Testbench(circuit, ic, window)
