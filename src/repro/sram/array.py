"""Macro-level SRAM array planning on top of the cell metrics.

The paper closes by calling the proposed cell "attractive for low-power
high-density SRAM applications"; this module is the tool a memory
designer would use to act on that: given a cell and an array geometry
it estimates

* the **column bitline capacitance** from the rows sharing it (each
  cell adds access-junction plus wire capacitance), and the resulting
  **read access time** by re-simulating the read with that load;
* the **array standby power** (cells x hold power);
* the **macro area** from the cell area plus periphery overhead;
* the **read energy** at the scaled bitline load.

Everything is physics-backed: the per-column quantities come from real
transient simulations of the cell driving the scaled load, not from
closed-form guesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.area import cell_area_um2
from repro.analysis.energy import read_energy
from repro.analysis.power import hold_power
from repro.analysis.timing import read_delay
from repro.sram.assist import Assist
from repro.sram.compiler.bitline import BITLINE_RES_PER_CELL, bitline_ladder
from repro.sram.testbench import BITLINE_CAPACITANCE

__all__ = ["ArrayGeometry", "ArrayEstimate", "plan_array"]

CELL_BITLINE_CAP = 1.5e-16
"""Default capacitance each cell adds to its column bitline
(junction + wire); override via :attr:`ArrayGeometry.cell_bitline_cap`."""

FIXED_BITLINE_CAP = 1.0e-15
"""Default column-fixed bitline capacitance (sense amp, column mux);
override via :attr:`ArrayGeometry.fixed_bitline_cap`."""

PERIPHERY_AREA_OVERHEAD = 0.35
"""Default decoder/sense/IO area as a fraction of the cell-array area;
override via :attr:`ArrayGeometry.periphery_area_overhead`."""

DECODE_TIME = 5.0e-11
"""Default wordline decode + driver delay added to the access time;
override via :attr:`ArrayGeometry.decode_time`."""


@dataclass(frozen=True)
class ArrayGeometry:
    """Logical organization of the macro plus its electrical/layout knobs.

    The per-technology knobs (wire load per cell, fixed column load,
    periphery overhead, decode time) default to the values used for the
    paper's estimates but are plain fields, so a different back-end or
    metal stack is expressed as an override instead of a module edit.
    """

    rows: int
    columns: int
    cell_bitline_cap: float = CELL_BITLINE_CAP
    fixed_bitline_cap: float = FIXED_BITLINE_CAP
    periphery_area_overhead: float = PERIPHERY_AREA_OVERHEAD
    decode_time: float = DECODE_TIME
    bitline_res_per_cell: float = BITLINE_RES_PER_CELL

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ValueError("array needs at least one row and one column")
        if self.cell_bitline_cap < 0.0 or self.fixed_bitline_cap < 0.0:
            raise ValueError("bitline capacitances cannot be negative")
        if self.periphery_area_overhead < 0.0:
            raise ValueError("periphery area overhead cannot be negative")
        if self.decode_time < 0.0:
            raise ValueError("decode time cannot be negative")
        if self.bitline_res_per_cell < 0.0:
            raise ValueError("bitline resistance cannot be negative")

    @property
    def bits(self) -> int:
        return self.rows * self.columns

    def bitline_ladder(self, explicit_rows=(), explicit_cell_cap: float = 0.0):
        """The per-row RC ladder this geometry compiles to — also the
        source of truth for :attr:`bitline_capacitance`."""
        return bitline_ladder(
            self.rows,
            self.cell_bitline_cap,
            self.fixed_bitline_cap,
            self.bitline_res_per_cell,
            explicit_rows=tuple(explicit_rows),
            explicit_cell_cap=explicit_cell_cap,
        )

    @property
    def bitline_capacitance(self) -> float:
        # Derived from the compiler's RC ladder so the lumped analytic
        # value and the compiled per-segment values cannot drift apart.
        return self.bitline_ladder().total_capacitance


@dataclass(frozen=True)
class ArrayEstimate:
    """Planned macro figures of merit."""

    geometry: ArrayGeometry
    vdd: float
    bitline_capacitance: float
    read_access_time: float
    standby_power: float
    read_energy_per_access: float
    area_um2: float

    @property
    def standby_power_per_bit(self) -> float:
        return self.standby_power / self.geometry.bits

    def summary(self) -> str:
        g = self.geometry
        lines = [
            f"{g.rows} x {g.columns} array ({g.bits / 1024:.1f} kb) at {self.vdd} V",
            f"  bitline capacitance : {self.bitline_capacitance * 1e15:.1f} fF",
            f"  read access time    : "
            + ("never develops" if math.isinf(self.read_access_time)
               else f"{self.read_access_time * 1e12:.0f} ps"),
            f"  standby power       : {self.standby_power:.3e} W "
            f"({self.standby_power_per_bit:.2e} W/bit)",
            f"  read energy/access  : {self.read_energy_per_access * 1e15:.2f} fJ",
            f"  macro area          : {self.area_um2:.1f} um^2",
        ]
        return "\n".join(lines)


def plan_array(
    cell,
    geometry: ArrayGeometry,
    vdd: float,
    read_assist: Assist | None = None,
    read_duration: float = 6e-9,
) -> ArrayEstimate:
    """Estimate macro figures of merit for a cell in the given array."""
    cbl = geometry.bitline_capacitance

    def read_bench(**kwargs):
        return cell.read_testbench(bitline_capacitance=cbl, **kwargs)

    # Re-simulate the read against the scaled column load.
    bench_cell = _BitlineScaledCell(cell, cbl)
    delay = read_delay(bench_cell, vdd, assist=read_assist, duration=read_duration)
    access_time = geometry.decode_time + delay if math.isfinite(delay) else math.inf

    standby = geometry.bits * hold_power(cell, vdd)
    energy = read_energy(bench_cell, vdd, assist=read_assist, duration=read_duration)
    area = geometry.bits * cell_area_um2(cell) * (1.0 + geometry.periphery_area_overhead)

    return ArrayEstimate(
        geometry=geometry,
        vdd=vdd,
        bitline_capacitance=cbl,
        read_access_time=access_time,
        standby_power=standby,
        read_energy_per_access=energy,
        area_um2=area,
    )


class _BitlineScaledCell:
    """Cell proxy whose read benches carry the column's bitline load."""

    def __init__(self, cell, bitline_capacitance: float):
        self._cell = cell
        self._cbl = bitline_capacitance

    def __getattr__(self, name):
        return getattr(self._cell, name)

    def read_testbench(self, vdd, assist=None, duration=1e-9, **kwargs):
        kwargs.setdefault("bitline_capacitance", self._cbl)
        try:
            return self._cell.read_testbench(vdd, assist=assist, duration=duration, **kwargs)
        except TypeError:
            # Cells with a fixed-load read port (the 7T) ignore the knob.
            kwargs.pop("bitline_capacitance", None)
            return self._cell.read_testbench(vdd, assist=assist, duration=duration, **kwargs)
