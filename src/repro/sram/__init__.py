"""SRAM cells, assist techniques, and operation testbenches."""

from repro.sram.assist import (
    ALL_ASSISTS,
    READ_ASSISTS,
    WRITE_ASSISTS,
    AccessWindow,
    Assist,
)
from repro.sram.cell import CellSizing, TfetDeviceSet
from repro.sram.cmos6t import Cmos6TCell
from repro.sram.testbench import Testbench
from repro.sram.tfet6t import AccessConfig, Tfet6TCell
from repro.sram.tfet7t import Tfet7TCell
from repro.sram.tfet_asym6t import AsymTfet6TCell

__all__ = [
    "ALL_ASSISTS",
    "READ_ASSISTS",
    "WRITE_ASSISTS",
    "AccessWindow",
    "Assist",
    "CellSizing",
    "TfetDeviceSet",
    "Cmos6TCell",
    "Testbench",
    "AccessConfig",
    "Tfet6TCell",
    "Tfet7TCell",
    "AsymTfet6TCell",
]
