"""Asymmetric 6T TFET SRAM (after Singh et al., ASP-DAC 2010).

The comparison cell of Section 5.  Key properties the paper relies on,
all reproduced here:

* **asymmetric access pair** — the q-side access transistor is an
  *outward* nTFET (can only discharge q), the qb-side an *inward*
  nTFET (can only charge qb), so a write that flips q = 1 -> 0 drives
  both access devices simultaneously;
* **built-in V_GND-raising write assist** — the cell ground is raised
  during every write pulse ("a modified version of raising WA");
* **no separatrix / undefined WL_crit** — the assisted write collapses
  the cell rather than racing a separatrix, so the paper excludes the
  asymmetric cell from the WL_crit comparison (we raise on attempts to
  bisect it);
* **static-power penalty** — with both bitlines clamped at V_DD in
  hold, the outward access transistor is reverse-biased whenever q
  stores 0, costing ~4 orders of magnitude at V_DD = 0.5 V.
"""

from __future__ import annotations

from repro.circuit.waveforms import Pulse
from repro.devices.library import tfet_device
from repro.sram.assist import Assist
from repro.sram.base import SixTCellBase
from repro.sram.cell import CellBuilder, CellSizing, TfetDeviceSet
from repro.sram.testbench import DEFAULT_ACCESS_START, Testbench

__all__ = ["AsymTfet6TCell"]

BUILTIN_ASSIST_FRACTION = 0.3


class AsymTfet6TCell(SixTCellBase):
    """Asymmetric 6T TFET cell with built-in ground-raising write assist."""

    name = "asym 6T TFET"

    DEFAULT_SIZING = CellSizing(access_width=0.06, pulldown_width=0.1, pullup_width=0.1)
    """As-published sizing: the cell targets 0.3 V operation, so its
    access devices are narrow relative to the storage core."""

    def __init__(
        self,
        sizing: CellSizing | None = None,
        devices: TfetDeviceSet | None = None,
    ):
        super().__init__(sizing or self.DEFAULT_SIZING)
        self.devices = devices or TfetDeviceSet.uniform(tfet_device())

    def _build_core(self, builder: CellBuilder) -> None:
        s = self.sizing
        d = self.devices
        builder.add_device("m1_pd", "q", "qb", "vgnd", d.pulldown_left, "n", s.pulldown_width)
        builder.add_device("m2_pu", "q", "qb", "vddc", d.pullup_left, "p", s.pullup_width)
        builder.add_device("m4_pd", "qb", "q", "vgnd", d.pulldown_right, "n", s.pulldown_width)
        builder.add_device("m5_pu", "qb", "q", "vddc", d.pullup_right, "p", s.pullup_width)
        # Outward nTFET on q (drain at the storage node), inward nTFET
        # on qb (drain at the bitline).
        builder.add_device("m3_ax", "q", "wl", "bl", d.access_left, "n", s.access_width)
        builder.add_device("m6_ax", "blb", "wl", "qb", d.access_right, "n", s.access_width)

    def wl_inactive(self, vdd: float) -> float:
        return 0.0

    def wl_active(self, vdd: float) -> float:
        return vdd

    def write_testbench(
        self,
        vdd: float,
        pulse_width: float,
        assist: Assist | None = None,
        t_on: float = DEFAULT_ACCESS_START,
    ) -> Testbench:
        """Write with the cell's built-in ground-raising assist.

        External assist techniques do not apply to this cell (the
        paper compares it as-published).
        """
        if assist is not None:
            raise ValueError("the asymmetric cell carries its own built-in write assist")
        bench = super().write_testbench(vdd, pulse_width, assist=None, t_on=t_on)
        m = bench.circuit.source_index("vgnd")
        original = bench.circuit.voltage_sources[m]
        bench.circuit.voltage_sources[m] = type(original)(
            original.a,
            original.b,
            Pulse(0.0, BUILTIN_ASSIST_FRACTION * vdd, t_start=t_on, width=pulse_width),
            original.name,
        )
        return bench
