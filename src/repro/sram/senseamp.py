"""Latch-type voltage sense amplifier and the full read path.

The cell-level read delay (`repro.analysis.timing.read_delay`) stops at
a fixed bitline-split threshold; this module closes the loop the way a
real macro does: a cross-coupled CMOS latch sense amplifier is hung on
the bitlines, fired by a sense-enable signal, and the *resolved* output
is what counts.  The read-path experiment this enables answers the
question the paper's Fig. 11 leaves open — how much of the TFET cell's
slow bitline discharge survives once a realistic sense amplifier with
its own regeneration time is included.

Topology: the standard StrongARM-style voltage latch reduced to its
cross-coupled core — two CMOS inverters (out/outb) with nMOS footer to
a sense-enable-pulled virtual ground, plus nMOS pass gates that sample
the bitlines onto the latch nodes while the latch is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Pulse
from repro.devices.library import nmos_device, pmos_device
from repro.sram.assist import Assist
from repro.sram.testbench import BITLINE_CAPACITANCE, Testbench

__all__ = ["SenseAmpSizing", "attach_sense_amplifier", "read_path_testbench"]


@dataclass(frozen=True)
class SenseAmpSizing:
    """Widths (um) of the latch devices."""

    latch_nmos: float = 0.2
    latch_pmos: float = 0.3
    pass_gate: float = 0.15
    footer: float = 0.4

    mismatch: float = 0.04
    """Worst-case width imbalance applied *against* the correct
    resolution (the wrong-side pull-down is this fraction wider) — an
    ideal matched latch would resolve any infinitesimal split, so the
    minimum sense delay is set by this offset."""

    def __post_init__(self) -> None:
        for name in ("latch_nmos", "latch_pmos", "pass_gate", "footer"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.mismatch < 0.5:
            raise ValueError("mismatch must lie in [0, 0.5)")


def attach_sense_amplifier(
    circuit: Circuit,
    bl: str,
    blb: str,
    vdd: float,
    fire_time: float,
    sizing: SenseAmpSizing | None = None,
    sample_until: float | None = None,
    enable_node: str | None = None,
    sample_node: str | None = None,
) -> tuple[str, str]:
    """Add the latch to an existing read circuit.

    Returns the latch output node names ``(sa_out, sa_outb)``.
    ``sa_out`` regenerates toward the side whose bitline stayed high.
    The pass gates sample the bitlines until ``sample_until`` (defaults
    to the fire time), then the footer fires and the latch regenerates.

    ``enable_node`` replaces the ideal sense-enable pulse with an
    existing circuit node (the array compiler's replica-bitline timing
    path drives the footer gate directly); ``fire_time`` is then only
    used for the default sampling cut-off.  ``sample_node`` likewise
    replaces the ideal sampling pulse with an existing (active-high
    sample, i.e. enable-complement) node.
    """
    sizing = sizing or SenseAmpSizing()
    sample_until = fire_time if sample_until is None else sample_until
    nmos = nmos_device()
    pmos = pmos_device()

    circuit.add_voltage_source("sa_vdd", "sa_vdd", "0", vdd)
    # Pass gates sample the bitlines while the latch is off.
    if sample_node is None:
        sample_node = "sa_smp"
        circuit.add_voltage_source(
            "sa_sample", "sa_smp", "0",
            Pulse(base=vdd, active=0.0, t_start=sample_until, width=1e-6),
        )
    circuit.add_transistor("sa_pg1", bl, sample_node, "sa_out", nmos, "n", sizing.pass_gate)
    circuit.add_transistor("sa_pg2", blb, sample_node, "sa_outb", nmos, "n", sizing.pass_gate)

    # Cross-coupled latch core.  The worst-case offset widens the
    # pull-down that fights the correct decision (sa_out should stay
    # high when blb is the discharging bitline).
    circuit.add_transistor("sa_pu1", "sa_out", "sa_outb", "sa_vdd", pmos, "p", sizing.latch_pmos)
    circuit.add_transistor(
        "sa_pd1", "sa_out", "sa_outb", "sa_tail", nmos, "n",
        sizing.latch_nmos * (1.0 + sizing.mismatch),
    )
    circuit.add_transistor("sa_pu2", "sa_outb", "sa_out", "sa_vdd", pmos, "p", sizing.latch_pmos)
    circuit.add_transistor("sa_pd2", "sa_outb", "sa_out", "sa_tail", nmos, "n", sizing.latch_nmos)

    # Footer: floats the tail until sense-enable fires.
    if enable_node is None:
        enable_node = "sa_en"
        circuit.add_voltage_source(
            "sa_enable", "sa_en", "0",
            Pulse(base=0.0, active=vdd, t_start=fire_time, width=1e-6),
        )
    circuit.add_transistor("sa_ft", "sa_tail", enable_node, "0", nmos, "n", sizing.footer)

    circuit.add_capacitor("sa_out", "0", 2e-16, name="sa_out.load")
    circuit.add_capacitor("sa_outb", "0", 2e-16, name="sa_outb.load")
    return "sa_out", "sa_outb"


def read_path_testbench(
    cell,
    vdd: float,
    fire_delay: float,
    assist: Assist | None = None,
    duration: float = 4e-9,
    sizing: SenseAmpSizing | None = None,
    bitline_capacitance: float = BITLINE_CAPACITANCE,
) -> Testbench:
    """A cell read with a sense amplifier fired ``fire_delay`` after WL.

    The returned bench's ``notes['fire_time']`` carries the absolute
    sense-enable time; the read succeeds when ``sa_outb`` (sampling the
    discharging bitline) resolves low and ``sa_out`` high.
    """
    bench = cell.read_testbench(
        vdd, assist=assist, duration=duration, bitline_capacitance=bitline_capacitance
    )
    fire_time = bench.window.t_on + fire_delay
    attach_sense_amplifier(
        bench.circuit,
        "bl",
        "blb",
        vdd,
        fire_time=fire_time,
        sizing=sizing,
    )
    ic = dict(bench.initial_conditions)
    ic["sa_out"] = ic.get("bl", vdd)
    ic["sa_outb"] = ic.get("blb", vdd)
    ic["sa_tail"] = vdd  # floats high until the footer fires
    return Testbench(
        circuit=bench.circuit,
        initial_conditions=ic,
        window=bench.window,
        one_node=bench.one_node,
        zero_node=bench.zero_node,
        read_bitline=bench.read_bitline,
        read_reference=bench.read_reference,
        precharge_level=bench.precharge_level,
        notes={"fire_time": fire_time},
    )


def sense_resolves_correctly(
    cell,
    vdd: float,
    fire_delay: float,
    assist: Assist | None = None,
    sizing: SenseAmpSizing | None = None,
    bitline_capacitance: float = BITLINE_CAPACITANCE,
) -> bool:
    """Whether the offset-afflicted latch resolves the read correctly."""
    from repro.circuit.transient import simulate_transient

    bench = read_path_testbench(
        cell,
        vdd,
        fire_delay,
        assist=assist,
        duration=fire_delay + 1.5e-9,
        sizing=sizing,
        bitline_capacitance=bitline_capacitance,
    )
    t_stop = bench.notes["fire_time"] + 1.0e-9
    result = simulate_transient(
        bench.circuit, t_stop, initial_conditions=bench.initial_conditions
    )
    return result.final("sa_out") - result.final("sa_outb") > 0.5 * vdd


def minimum_sense_delay(
    cell,
    vdd: float,
    assist: Assist | None = None,
    sizing: SenseAmpSizing | None = None,
    bitline_capacitance: float = BITLINE_CAPACITANCE,
    lower: float = 2e-11,
    upper: float = 3e-9,
    relative_tolerance: float = 0.05,
) -> float:
    """Smallest wordline-to-sense-enable delay that still reads correctly.

    Bisection over the fire delay; returns ``math.inf`` when even the
    largest tested delay mis-resolves (offset larger than the final
    bitline split).
    """
    import math

    def ok(delay: float) -> bool:
        return sense_resolves_correctly(
            cell, vdd, delay, assist=assist, sizing=sizing,
            bitline_capacitance=bitline_capacitance,
        )

    if not ok(upper):
        return math.inf
    if ok(lower):
        return lower
    lo, hi = lower, upper
    while hi - lo > relative_tolerance * hi:
        mid = math.sqrt(lo * hi)
        if ok(mid):
            hi = mid
        else:
            lo = mid
    return hi
