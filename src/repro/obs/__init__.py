"""repro.obs — cross-process observability pipeline.

Built on :mod:`repro.telemetry` (in-process counters/spans) and
consumed by the batch engine, this package carries structure *across*
the worker-process boundary:

* :mod:`repro.obs.context` — trace/span id propagation: a
  :class:`TraceSpec` minted in the scheduler travels through
  ``EngineConfig`` into every worker, where per-task span trees are
  recorded under deterministic ids.
* :mod:`repro.obs.sink` — per-process JSONL span sinks, flushed per
  record so a killed worker loses at most its in-flight task.
* :mod:`repro.obs.trace` — merge of all sinks into one run-level
  trace file plus the analytics behind ``repro trace
  summary|timeline|slowest|convergence`` (Gantt lanes, wall-time
  ranking, ConvergenceError forensics).
* :mod:`repro.obs.export` — stable metrics snapshots (JSON +
  Prometheus text exposition) per run; the serve daemon's per-request
  telemetry substrate.
* :mod:`repro.obs.bench` — bench-regression tracking over the
  ``BENCH_*.json`` artifacts (``repro bench history|check``).

Everything is plain-Python and dependency-free, like the telemetry
layer it extends.
"""

from repro.obs.context import TraceSpec, batch_span_id, task_span_id
from repro.obs.sink import SINK_SCHEMA, SpanSink, worker_sink
from repro.obs.trace import TRACE_SCHEMA, load_trace, merge_trace, summarize_trace

__all__ = [
    "SINK_SCHEMA",
    "SpanSink",
    "TRACE_SCHEMA",
    "TraceSpec",
    "batch_span_id",
    "load_trace",
    "merge_trace",
    "summarize_trace",
    "task_span_id",
    "worker_sink",
]
