"""Bench-regression tracking over the ``BENCH_*.json`` artifacts.

Every benchmark in ``benchmarks/`` emits a ``BENCH_<name>.json`` at the
repo root with a schema-tagged payload.  This module normalizes each
into one *headline record* — the metric that must not regress — and
appends them to ``results/bench_history.jsonl`` so the performance
trajectory of the repo survives across runs and machines:

* ``repro.bench.engine/v1`` / ``repro.bench.char/v1`` /
  ``repro.bench.spice_core/v1`` / ``repro.bench.spice_batch/v1`` —
  ``speedup`` (higher is better), gated by the file's own
  ``min_speedup``/``gate``;
* ``repro.bench.telemetry/v1`` / ``repro.bench.verify/v1`` —
  ``disabled_overhead_guard.overhead_fraction`` (lower is better),
  gated by the file's ``budget_fraction``.

``check_history`` flags two kinds of regression: a hard-limit breach
(the latest value violates its own gate) and a trajectory drop (a
higher-is-better metric fell more than ``tolerance`` below the median
of its previous entries — how PR 2's 3.75x or PR 3's 2.4x silently
eroding gets caught).  Lower-is-better metrics are judged on their
hard budget only: a 0.05 % overhead doubling to 0.1 % is jitter, not a
regression.

``repro bench history|check`` and ``scripts/bench_track.py`` are the
entry points; CI appends fresh records and fails on ``check``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = [
    "RECORD_SCHEMA",
    "DEFAULT_HISTORY",
    "bench_record",
    "collect_bench_files",
    "append_history",
    "load_history",
    "check_history",
    "format_history",
]

RECORD_SCHEMA = "repro.obs.bench-record/v1"
DEFAULT_HISTORY = "results/bench_history.jsonl"

#: schema prefix -> (dotted path of headline value, direction, dotted
#: path of the hard limit baked into the bench file itself)
HEADLINES: dict[str, tuple[str, str, str | None]] = {
    "repro.bench.engine": ("speedup", "higher", "min_speedup"),
    "repro.bench.char": ("speedup", "higher", "min_speedup"),
    "repro.bench.spice_core": ("speedup", "higher", "gate"),
    "repro.bench.spice_batch": ("speedup", "higher", "gate"),
    "repro.bench.array": ("speedup", "higher", "min_speedup"),
    "repro.bench.serve": ("p99_warm_s", "lower", "gate_p99_s"),
    "repro.bench.serve_fleet": ("throughput_scale", "higher", "gate_scale"),
    "repro.bench.telemetry": (
        "disabled_overhead_guard.overhead_fraction",
        "lower",
        "disabled_overhead_guard.budget_fraction",
    ),
    "repro.bench.verify": (
        "disabled_overhead_guard.overhead_fraction",
        "lower",
        "disabled_overhead_guard.budget_fraction",
    ),
}


def _dig(payload: dict, dotted: str):
    value = payload
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def bench_record(payload: dict, source: str) -> dict | None:
    """Normalize one ``BENCH_*.json`` payload into a headline record.

    Unknown schemas fall back to a top-level ``speedup`` field when one
    exists (higher is better, no hard limit); otherwise ``None`` — the
    file is skipped rather than mis-tracked.
    """
    schema = str(payload.get("schema", ""))
    family = schema.split("/")[0]
    headline = HEADLINES.get(family)
    if headline is None:
        if isinstance(payload.get("speedup"), (int, float)):
            headline = ("speedup", "higher", None)
        else:
            return None
    value_path, direction, limit_path = headline
    value = _dig(payload, value_path)
    if not isinstance(value, (int, float)):
        return None
    bench = family.rsplit(".", 1)[-1] if family else Path(source).stem
    limit = _dig(payload, limit_path) if limit_path else None
    return {
        "schema": RECORD_SCHEMA,
        "bench": bench,
        "bench_schema": schema,
        "created_unix": float(payload.get("created_unix", 0.0)),
        "recorded_unix": time.time(),
        "metric": value_path,
        "direction": direction,
        "value": float(value),
        "limit": float(limit) if isinstance(limit, (int, float)) else None,
        "source": source,
    }


def collect_bench_files(root: str | Path = ".") -> list[Path]:
    """Every ``BENCH_*.json`` directly under ``root``, sorted by name."""
    return sorted(Path(root).glob("BENCH_*.json"))


def load_history(history_path: str | Path) -> list[dict]:
    """All parseable records from the history log (torn tails skipped)."""
    path = Path(history_path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("schema") == RECORD_SCHEMA:
            records.append(record)
    return records


def append_history(records: list[dict], history_path: str | Path) -> int:
    """Append new records; entries already present are skipped.

    Identity is ``(bench, created_unix)`` — the benchmark's own
    creation stamp — so re-running the tracker over unchanged BENCH
    files is idempotent.
    """
    path = Path(history_path)
    existing = {
        (r.get("bench"), r.get("created_unix")) for r in load_history(path)
    }
    fresh = [
        r for r in records
        if r is not None and (r["bench"], r["created_unix"]) not in existing
    ]
    if fresh:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            for record in fresh:
                handle.write(json.dumps(record) + "\n")
            handle.flush()
    return len(fresh)


def _grouped(history: list[dict]) -> dict[str, list[dict]]:
    groups: dict[str, list[dict]] = {}
    for record in history:
        groups.setdefault(record["bench"], []).append(record)
    for records in groups.values():
        records.sort(key=lambda r: (r.get("created_unix", 0.0), r.get("recorded_unix", 0.0)))
    return groups


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_history(history: list[dict], tolerance: float = 0.25) -> list[str]:
    """Regression report over the history; empty list means healthy.

    For each bench, the *latest* record is judged against (a) its hard
    limit and (b), for higher-is-better metrics with at least one prior
    entry, the median of all previous values minus ``tolerance``
    (fractional).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    problems: list[str] = []
    for bench, records in sorted(_grouped(history).items()):
        latest = records[-1]
        value = latest["value"]
        limit = latest.get("limit")
        direction = latest.get("direction", "higher")
        if limit is not None:
            if direction == "higher" and value < limit:
                problems.append(
                    f"{bench}: {latest['metric']} = {value:.4g} is below its "
                    f"hard gate {limit:.4g}"
                )
            elif direction == "lower" and value > limit:
                problems.append(
                    f"{bench}: {latest['metric']} = {value:.4g} exceeds its "
                    f"budget {limit:.4g}"
                )
        previous = [r["value"] for r in records[:-1]]
        if direction == "higher" and previous:
            baseline = _median(previous)
            floor = (1.0 - tolerance) * baseline
            if value < floor:
                problems.append(
                    f"{bench}: {latest['metric']} = {value:.4g} dropped more "
                    f"than {tolerance:.0%} below its baseline median "
                    f"{baseline:.4g} (over {len(previous)} prior run(s))"
                )
    return problems


def format_history(history: list[dict], tolerance: float = 0.25) -> str:
    """Per-bench history table with latest/baseline/limit/status."""
    if not history:
        return "(bench history is empty — run scripts/bench_track.py first)"
    problem_benches = {p.split(":", 1)[0] for p in check_history(history, tolerance)}
    header = ["bench", "metric", "runs", "latest", "baseline", "limit", "status"]
    rows = []
    for bench, records in sorted(_grouped(history).items()):
        latest = records[-1]
        previous = [r["value"] for r in records[:-1]]
        direction = latest.get("direction", "higher")
        limit = latest.get("limit")
        limit_text = "-"
        if limit is not None:
            limit_text = (">=" if direction == "higher" else "<=") + f"{limit:.4g}"
        rows.append(
            [
                bench,
                latest["metric"],
                str(len(records)),
                f"{latest['value']:.4g}",
                f"{_median(previous):.4g}" if previous else "-",
                limit_text,
                "REGRESSED" if bench in problem_benches else "ok",
            ]
        )
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines = ["== bench history =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
