"""Run-level trace merge and timeline analytics.

:func:`merge_trace` folds every per-process JSONL sink under a trace
directory into one ``trace.json`` (written atomically), ordered
deterministically so that two merges of the same run — at any worker
count — differ only in timestamps.

The analytics behind the ``repro trace`` CLI verbs all read that merged
file:

* ``summary`` — span population, scheduler wall time, task coverage
  (fraction of scheduler wall time with at least one task in flight),
  convergence-failure totals, and a per-span-name aggregate table;
* ``timeline`` — an ASCII Gantt of task spans packed into concurrency
  lanes, reconstructing where the run's wall time went;
* ``slowest`` — tasks ranked by wall time with their Newton effort and
  retry counts (read from the task spans' counter fields);
* ``convergence`` — every ConvergenceError forensics event across all
  workers, grouped per task.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.telemetry.core import atomic_write_text

__all__ = [
    "TRACE_SCHEMA",
    "merge_trace",
    "load_trace",
    "summarize_trace",
    "format_summary",
    "format_timeline",
    "format_slowest",
    "format_convergence",
]

TRACE_SCHEMA = "repro.obs.trace/v1"
MERGED_NAME = "trace.json"


# -- merge ----------------------------------------------------------------------


def _read_sink(path: Path) -> tuple[list[dict], list[dict], list[dict]]:
    """(metas, spans, events) from one sink file; torn tails ignored."""
    metas: list[dict] = []
    spans: list[dict] = []
    events: list[dict] = []
    try:
        text = path.read_text()
    except OSError:
        return metas, spans, events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn line from a killed process
        kind = record.get("kind")
        if kind == "meta":
            metas.append(record)
        elif kind == "span":
            record.pop("kind", None)
            spans.append(record)
        elif kind == "event":
            record.pop("kind", None)
            events.append(record)
    return metas, spans, events


def merge_trace(trace_dir: str | Path, out_path: str | Path | None = None) -> Path:
    """Merge every JSONL sink under ``trace_dir`` into one trace file.

    Spans are deduplicated by id (last record wins — a re-merged run
    after more batches refreshes rather than duplicates) and sorted by
    ``(t0_unix, id)``; the id tie-break keeps the order deterministic
    for spans born in the same clock tick.  The output is written
    atomically, so a concurrent reader never sees a half-merged file.
    """
    trace_dir = Path(trace_dir)
    out_path = Path(out_path) if out_path is not None else trace_dir / MERGED_NAME
    spans_by_id: dict[str, dict] = {}
    events: list[dict] = []
    sources: list[str] = []
    trace_ids: set[str] = set()
    for path in sorted(trace_dir.glob("*.jsonl")):
        metas, spans, sink_events = _read_sink(path)
        sources.append(path.name)
        for meta in metas:
            if meta.get("trace_id"):
                trace_ids.add(meta["trace_id"])
        for span in spans:
            spans_by_id[span.get("id", "")] = span
        events.extend(sink_events)
    spans = sorted(
        spans_by_id.values(), key=lambda s: (s.get("t0_unix", 0.0), s.get("id", ""))
    )
    events.sort(key=lambda e: (e.get("t_unix", 0.0), e.get("name", "")))
    payload = {
        "schema": TRACE_SCHEMA,
        "created_unix": time.time(),
        "trace_ids": sorted(trace_ids),
        "sources": sources,
        "spans": spans,
        "events": events,
    }
    return atomic_write_text(out_path, json.dumps(payload, indent=1))


def load_trace(path: str | Path) -> dict:
    """Load a merged trace; accepts the file or its trace directory."""
    path = Path(path)
    if path.is_dir():
        path = path / MERGED_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"no merged trace at {path} — run a traced experiment "
            "(--trace-dir) or merge_trace() the sink directory first"
        )
    payload = json.loads(path.read_text())
    if payload.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path} has schema {payload.get('schema')!r}, expected {TRACE_SCHEMA!r}"
        )
    return payload


# -- interval helpers ------------------------------------------------------------


def _intervals(spans: list[dict]) -> list[tuple[float, float]]:
    return [
        (s["t0_unix"], s["t0_unix"] + max(s.get("dur_s", 0.0), 0.0)) for s in spans
    ]


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of the intervals."""
    if not intervals:
        return 0.0
    total = 0.0
    start = end = None
    for lo, hi in sorted(intervals):
        if start is None:
            start, end = lo, hi
        elif lo <= end:
            end = max(end, hi)
        else:
            total += end - start
            start, end = lo, hi
    total += end - start
    return total


def _clip(intervals, window) -> list[tuple[float, float]]:
    lo_w, hi_w = window
    return [
        (max(lo, lo_w), min(hi, hi_w))
        for lo, hi in intervals
        if min(hi, hi_w) > max(lo, lo_w)
    ]


# -- analytics ------------------------------------------------------------------


def _by_name(trace: dict, name: str) -> list[dict]:
    return [s for s in trace.get("spans", []) if s.get("name") == name]


def _field(span: dict, key: str, default=None):
    return span.get("fields", {}).get(key, default)


def _counter(span: dict, key: str, default: int = 0) -> int:
    return int(_field(span, "counters", {}).get(key, default))


def summarize_trace(trace: dict) -> dict:
    """Headline statistics of one merged trace (plain dict, testable)."""
    spans = trace.get("spans", [])
    tasks = _by_name(trace, "task")
    batches = _by_name(trace, "batch")
    attempts = _by_name(trace, "attempt")
    failed = [t for t in tasks if _field(t, "status") == "failed"]
    convergence_events = [
        e for e in trace.get("events", [])
        if e.get("name") == "convergence_error"
    ]

    batch_intervals = _intervals(batches)
    scheduler_wall = _union_length(batch_intervals)
    coverage = 0.0
    if scheduler_wall > 0.0 and tasks:
        covered = _union_length(
            [
                clipped
                for window in batch_intervals
                for clipped in _clip(_intervals(tasks), window)
            ]
        )
        coverage = covered / scheduler_wall

    run_wall = 0.0
    if spans:
        t0 = min(s["t0_unix"] for s in spans)
        t1 = max(s["t0_unix"] + s.get("dur_s", 0.0) for s in spans)
        run_wall = t1 - t0

    by_name: dict[str, dict] = {}
    for span in spans:
        stats = by_name.setdefault(
            span.get("name", "?"), {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stats["count"] += 1
        dur = span.get("dur_s", 0.0)
        stats["total_s"] += dur
        stats["max_s"] = max(stats["max_s"], dur)

    return {
        "trace_ids": trace.get("trace_ids", []),
        "spans": len(spans),
        "batches": len(batches),
        "tasks": len(tasks),
        "attempts": len(attempts),
        "failed_tasks": len(failed),
        "retried_tasks": sum(1 for t in tasks if int(_field(t, "attempts", 1)) > 1),
        "convergence_events": len(convergence_events),
        "run_wall_s": run_wall,
        "scheduler_wall_s": scheduler_wall,
        "task_coverage": coverage,
        "by_name": by_name,
    }


def format_summary(trace: dict) -> str:
    s = summarize_trace(trace)
    lines = ["== trace summary =="]
    lines.append(f"trace ids      : {', '.join(s['trace_ids']) or '(none recorded)'}")
    lines.append(
        f"spans          : {s['spans']} "
        f"({s['batches']} batches, {s['tasks']} tasks, {s['attempts']} attempts)"
    )
    lines.append(f"run wall       : {s['run_wall_s']:.3f} s (first span to last)")
    lines.append(
        f"scheduler wall : {s['scheduler_wall_s']:.3f} s across "
        f"{s['batches']} batch span(s)"
    )
    if s["scheduler_wall_s"] > 0.0:
        lines.append(
            f"task coverage  : {100.0 * s['task_coverage']:.1f} % of scheduler "
            "wall had >=1 task in flight"
        )
    lines.append(
        f"failures       : {s['failed_tasks']} failed task(s), "
        f"{s['retried_tasks']} retried, "
        f"{s['convergence_events']} convergence event(s)"
    )
    if s["by_name"]:
        lines.append("")
        lines.append("by span name:")
        header = ["name", "count", "total (s)", "mean (ms)", "max (ms)"]
        rows = []
        ordered = sorted(
            s["by_name"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
        for name, stats in ordered:
            mean_ms = 1e3 * stats["total_s"] / stats["count"]
            rows.append(
                [
                    name,
                    str(stats["count"]),
                    f"{stats['total_s']:.3f}",
                    f"{mean_ms:.2f}",
                    f"{1e3 * stats['max_s']:.2f}",
                ]
            )
        lines.extend(_table(header, rows))
    return "\n".join(lines)


def _table(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return out


def _pack_lanes(tasks: list[dict]) -> list[list[dict]]:
    """First-fit packing of task spans into concurrency lanes."""
    lanes: list[list[dict]] = []
    lane_ends: list[float] = []
    for span in sorted(tasks, key=lambda s: s["t0_unix"]):
        t0 = span["t0_unix"]
        t1 = t0 + span.get("dur_s", 0.0)
        for i, end in enumerate(lane_ends):
            if t0 >= end - 1e-9:
                lanes[i].append(span)
                lane_ends[i] = t1
                break
        else:
            lanes.append([span])
            lane_ends.append(t1)
    return lanes


def format_timeline(trace: dict, width: int = 72) -> str:
    """ASCII Gantt of the run's task spans, one row per concurrency lane.

    ``#`` cells are running tasks, ``x`` cells failed tasks; lane count
    approximates the worker parallelism actually achieved.
    """
    tasks = _by_name(trace, "task")
    if not tasks:
        return "(no task spans in trace)"
    t_lo = min(s["t0_unix"] for s in tasks)
    t_hi = max(s["t0_unix"] + s.get("dur_s", 0.0) for s in tasks)
    span_s = max(t_hi - t_lo, 1e-9)
    scale = width / span_s

    lines = [
        "== task timeline ==",
        f"window {span_s:.3f} s, {len(tasks)} tasks, "
        f"{len(_pack_lanes(tasks))} lanes ('#' ok, 'x' failed)",
    ]
    for i, lane in enumerate(_pack_lanes(tasks)):
        cells = [" "] * width
        for span in lane:
            mark = "x" if _field(span, "status") == "failed" else "#"
            a = int((span["t0_unix"] - t_lo) * scale)
            b = int((span["t0_unix"] + span.get("dur_s", 0.0) - t_lo) * scale)
            b = max(b, a + 1)
            for c in range(a, min(b, width)):
                cells[c] = mark
        lines.append(f"lane {i:>2} |{''.join(cells)}|")
    lines.append(f"        0{' ' * (width - len(f'{span_s:.3f} s') - 1)}{span_s:.3f} s")
    return "\n".join(lines)


def format_slowest(trace: dict, top: int = 10) -> str:
    """Tasks ranked by wall time, with Newton effort and retries."""
    tasks = _by_name(trace, "task")
    if not tasks:
        return "(no task spans in trace)"
    ranked = sorted(tasks, key=lambda s: s.get("dur_s", 0.0), reverse=True)[:top]
    header = [
        "task",
        "wall (s)",
        "attempts",
        "newton iters",
        "dc solves",
        "tran steps",
        "status",
    ]
    rows = []
    for span in ranked:
        rows.append(
            [
                str(_field(span, "index", "?")),
                f"{span.get('dur_s', 0.0):.3f}",
                str(_field(span, "attempts", 1)),
                str(_counter(span, "newton.iterations")),
                str(_counter(span, "dcop.solves")),
                str(_counter(span, "transient.steps_accepted")),
                str(_field(span, "status", "?")),
            ]
        )
    lines = [f"== slowest tasks (top {len(ranked)} of {len(tasks)}) =="]
    lines.extend(_table(header, rows))
    return "\n".join(lines)


def format_convergence(trace: dict) -> str:
    """ConvergenceError forensics across all workers, grouped per task."""
    events = [
        e for e in trace.get("events", []) if e.get("name") == "convergence_error"
    ]
    failed = [
        s for s in _by_name(trace, "task") if _field(s, "status") == "failed"
    ]
    if not events and not failed:
        return "(no convergence failures recorded)"
    lines = ["== convergence forensics =="]
    lines.append(
        f"{len(events)} convergence event(s), {len(failed)} task(s) "
        "failed after retries"
    )
    by_task: dict[object, list[dict]] = {}
    for event in events:
        by_task.setdefault(event.get("fields", {}).get("index", "?"), []).append(event)
    for index in sorted(by_task, key=str):
        lines.append(f"task {index}:")
        for event in by_task[index]:
            fields = event.get("fields", {})
            error = str(fields.get("error", ""))
            if len(error) > 160:
                error = error[:157] + "..."
            lines.append(
                f"  attempt {fields.get('attempt', '?')}: "
                f"[{fields.get('error_type', '?')}] {error}"
            )
    terminal = [
        s for s in failed
        if _field(s, "index", "?") not in by_task
    ]
    for span in terminal:
        lines.append(
            f"task {_field(span, 'index', '?')}: failed "
            f"[{_field(span, 'error_type', '?')}] {_field(span, 'error', '')}"
        )
    return "\n".join(lines)
