"""Trace-context propagation across the worker-process boundary.

A :class:`TraceSpec` is minted in the scheduler (one per traced batch)
and travels *by value* through ``EngineConfig`` into every worker
process, where it anchors that worker's span records:

* the batch span id derives from ``(trace_id, run_key)``;
* each task span id derives from ``(trace_id, batch span, index)``;
* each attempt span id derives from ``(trace_id, task span, attempt)``;
* solver spans recorded by the worker's telemetry session derive from
  the attempt span via the session's sequence counter.

Every id is a pure function of the trace id and the task's logical
position — never of pids, worker count, or completion order — so a
merged trace of the same seeded run is identical at any ``--jobs J``
modulo timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.core import derive_span_id, mint_trace_id

__all__ = ["TraceSpec", "batch_span_id", "task_span_id", "attempt_span_id"]


def batch_span_id(trace_id: str, run_key: str) -> str:
    """The deterministic span id of one engine batch."""
    return derive_span_id(trace_id, "", f"batch[{run_key}]", 0)


def task_span_id(trace_id: str, batch_id: str, index: int) -> str:
    """The deterministic span id of task ``index`` within a batch."""
    return derive_span_id(trace_id, batch_id, f"task[{index}]", 0)


def attempt_span_id(trace_id: str, task_id: str, attempt: int) -> str:
    """The deterministic span id of one task attempt."""
    return derive_span_id(trace_id, task_id, f"attempt[{attempt}]", 0)


@dataclass(frozen=True)
class TraceSpec:
    """Per-batch trace coordinates handed to every worker.

    Plain picklable data: ``trace_id`` names the run-level trace,
    ``directory`` is where this process's JSONL sink lives, and
    ``parent_span_id`` is the batch span the task spans parent to.
    """

    trace_id: str
    directory: str
    parent_span_id: str = ""

    @staticmethod
    def for_batch(directory, run_key: str, trace_id: str | None = None) -> "TraceSpec":
        """Mint the spec for one batch (fresh trace id unless given)."""
        trace_id = trace_id or mint_trace_id()
        return TraceSpec(
            trace_id=trace_id,
            directory=str(directory),
            parent_span_id=batch_span_id(trace_id, run_key),
        )
