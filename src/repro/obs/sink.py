"""Per-process JSONL span sinks.

Each process participating in a traced run — the scheduler, every pool
worker, the experiment runner — streams its span and event records to
its own append-only JSONL file under the trace directory
(``<role>-<pid>.jsonl``).  One file per (process, role) means no
cross-process locking; every record is flushed as soon as it is
written, so a SIGKILL loses at most the record being formatted, and the
merge step (:func:`repro.obs.trace.merge_trace`) tolerates a torn final
line exactly like the engine's checkpoint reader.

Record kinds (the ``kind`` field):

* ``meta`` — one header line per file: schema, role, pid, start time;
* ``span`` — ``{id, parent, name, t0_unix, dur_s, fields?}``;
* ``event`` — ``{name, t_unix, level?, fields?}`` (e.g. the
  ConvergenceError forensics workers emit for failed attempts).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["SINK_SCHEMA", "SpanSink", "worker_sink", "reset_worker_sinks"]

SINK_SCHEMA = "repro.obs.sink/v1"


class SpanSink:
    """Append-only JSONL writer for one process's trace records."""

    def __init__(
        self, directory: str | Path, role: str = "worker", trace_id: str | None = None
    ):
        self.directory = Path(directory)
        self.role = role
        self.trace_id = trace_id
        self.pid = os.getpid()
        self.path = self.directory / f"{role}-{self.pid}.jsonl"
        self._handle = None

    def _ensure_open(self) -> None:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
            if self.path.stat().st_size == 0:
                meta = {
                    "kind": "meta",
                    "schema": SINK_SCHEMA,
                    "role": self.role,
                    "pid": self.pid,
                    "created_unix": time.time(),
                }
                if self.trace_id:
                    meta["trace_id"] = self.trace_id
                self._write(meta)

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def write_span(
        self,
        span_id: str,
        parent_id: str,
        name: str,
        t0_unix: float,
        dur_s: float,
        **fields,
    ) -> None:
        self._ensure_open()
        record = {
            "kind": "span",
            "id": span_id,
            "parent": parent_id,
            "name": name,
            "t0_unix": t0_unix,
            "dur_s": dur_s,
        }
        if fields:
            record["fields"] = fields
        self._write(record)

    def write_event(self, name: str, level: str = "info", **fields) -> None:
        self._ensure_open()
        record = {"kind": "event", "name": name, "t_unix": time.time(), "level": level}
        if fields:
            record["fields"] = fields
        self._write(record)

    def write_session_spans(self, session) -> None:
        """Stream a telemetry session's span records into the sink.

        The records already carry deterministic ids and parents from
        the session's :class:`~repro.telemetry.core.TraceContext`, so
        they are written verbatim.
        """
        if not session.spans:
            return
        self._ensure_open()
        for record in session.spans:
            self._write({"kind": "span", **record})
        if session.dropped_spans:
            self.write_event(
                "spans.dropped", level="warning", count=session.dropped_spans
            )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# -- per-process sink cache ------------------------------------------------------
#
# Pool workers persist across tasks, so each process keeps one open
# sink per trace directory.  The cache is keyed by pid as well: a
# forked child inherits the parent's module state (including any open
# sink from an earlier inline run) and must not write through the
# inherited handle — same-file appends from two processes would
# interleave mid-line.

_sinks: dict[tuple[int, str], SpanSink] = {}


def worker_sink(directory: str | Path, trace_id: str | None = None) -> SpanSink:
    """This process's sink for ``directory`` (opened lazily, cached)."""
    key = (os.getpid(), str(directory))
    sink = _sinks.get(key)
    if sink is None:
        sink = _sinks[key] = SpanSink(directory, role="worker", trace_id=trace_id)
    return sink


def reset_worker_sinks() -> None:
    """Close and forget every cached sink (test isolation)."""
    for sink in _sinks.values():
        sink.close()
    _sinks.clear()
