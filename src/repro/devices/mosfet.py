"""Analytic 32 nm MOSFET model (PTM-low-power-like baseline).

The paper benchmarks every TFET SRAM against a 6T CMOS SRAM simulated
with the 32 nm PTM low-power model card.  Here the baseline is an
EKV-style single-expression model: a smooth interpolation between the
subthreshold exponential and the strong-inversion square law, with
DIBL, mobility degradation and channel-length modulation.  The model is
calibrated to PTM-32LP-like terminal anchors (I_off ~ 1e-11 A/um and
I_on ~ 4e-4 A/um at 0.8 V), which is all the paper's comparisons
consume: the 60+ mV/dec swing and the 6 order-of-magnitude leakage gap
to the TFET.

Currents are densities in A/um of gate width for the n-type reference
device; polarity mirroring and width scaling happen in
:class:`repro.circuit.elements.Transistor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import lru_cache

import numpy as np
from scipy.optimize import brentq

from repro.constants import thermal_voltage
from repro.devices.charges import LinearCharge, SmoothStepCharge

__all__ = [
    "MosfetParameters",
    "MosfetModel",
    "MosfetCharges",
    "calibrate_mosfet",
    "nmos_32nm",
    "pmos_32nm",
]


@dataclass(frozen=True)
class MosfetParameters:
    """EKV-style model card for the n-type reference device."""

    threshold_voltage: float = 0.45
    """V_T0 in volts; set by calibration for the off-current anchor."""

    subthreshold_slope_factor: float = 1.45
    """n; gives the ~90 mV/dec swing of a 32 nm low-power device."""

    transconductance_density: float = 4.0e-4
    """2 n k_p (1 um / L) v_T^2 lumped prefactor in A/um; calibrated."""

    dibl: float = 0.06
    """Threshold shift per volt of drain bias."""

    mobility_reduction_voltage: float = 0.9
    """Overdrive scale (V) for the velocity-saturation roll-off."""

    channel_length_modulation: float = 0.08
    """Relative output-current slope per volt in saturation."""

    temperature: float = 300.0


@dataclass(frozen=True)
class MosfetModel:
    """Terminal-current evaluation of the analytic MOSFET."""

    params: MosfetParameters = field(default_factory=MosfetParameters)

    def _forward_density(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Density for vds >= 0 (source-referenced)."""
        p = self.params
        vt = thermal_voltage(p.temperature)
        vth = p.threshold_voltage - p.dibl * vds
        pinch = (vgs - vth) / p.subthreshold_slope_factor

        half = 2.0 * vt
        forward = np.logaddexp(0.0, pinch / half) ** 2
        reverse = np.logaddexp(0.0, (pinch - vds) / half) ** 2
        i_long = p.transconductance_density * (forward - reverse)

        overdrive = half * np.logaddexp(0.0, pinch / half)
        saturation = 1.0 + overdrive / p.mobility_reduction_voltage
        clm = 1.0 + p.channel_length_modulation * vds
        return i_long * clm / saturation

    def current_density(
        self, vgs: np.ndarray | float, vds: np.ndarray | float
    ) -> np.ndarray:
        """Signed drain-current density (A/um); symmetric under S/D swap."""
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs_b, vds_b = np.broadcast_arrays(vgs, vds)
        forward = self._forward_density(vgs_b, np.maximum(vds_b, 0.0))
        swapped = self._forward_density(vgs_b - vds_b, np.maximum(-vds_b, 0.0))
        result = np.where(vds_b >= 0.0, forward, -swapped)
        return result if result.shape else float(result)

    def evaluate_density(
        self, vgs: np.ndarray | float, vds: np.ndarray | float, step: float = 1e-5
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current density and its partial derivatives (central difference)."""
        i0 = self.current_density(vgs, vds)
        gm = (
            self.current_density(np.asarray(vgs) + step, vds)
            - self.current_density(np.asarray(vgs) - step, vds)
        ) / (2.0 * step)
        gds = (
            self.current_density(vgs, np.asarray(vds) + step)
            - self.current_density(vgs, np.asarray(vds) - step)
        ) / (2.0 * step)
        return i0, gm, gds

    def on_current(self, vdd: float = 0.8) -> float:
        """Forward on-current density at V_GS = V_DS = vdd."""
        return float(np.asarray(self.current_density(vdd, vdd)))

    def off_current(self, vdd: float = 0.8) -> float:
        """Off-current density at V_GS = 0, V_DS = vdd."""
        return float(np.asarray(self.current_density(0.0, vdd)))

    def subthreshold_swing_mv_per_dec(self, vds: float = 0.8) -> float:
        """Average swing (mV/dec) over the bottom half of the subthreshold region."""
        p = self.params
        vgs = np.linspace(0.0, p.threshold_voltage / 2.0, 41)
        current = np.asarray(self.current_density(vgs, vds))
        decades = np.log10(current[-1] / current[0])
        return 1e3 * (vgs[-1] - vgs[0]) / decades


@dataclass(frozen=True)
class MosfetCharges:
    """Per-um-width capacitance model (Meyer-style partition)."""

    cgs_per_um: SmoothStepCharge
    cgd_per_um: SmoothStepCharge
    junction_per_um: LinearCharge


MOS_OXIDE_CAP_PER_AREA = 0.028
"""F/m^2 for a ~1.2 nm EOT gate stack."""

MOS_CHANNEL_LENGTH = 32e-9
MOS_OVERLAP_CAP_PER_UM = 5.0e-17
MOS_JUNCTION_CAP_PER_UM = 1.0e-16


def mosfet_charges(threshold_voltage: float) -> MosfetCharges:
    """Bias-dependent gate charges with half-channel Meyer partition."""
    channel = MOS_OXIDE_CAP_PER_AREA * MOS_CHANNEL_LENGTH * 1e-6
    half = SmoothStepCharge(
        c_low=MOS_OVERLAP_CAP_PER_UM,
        c_high=MOS_OVERLAP_CAP_PER_UM + 0.5 * channel,
        v_step=threshold_voltage,
        width=0.1,
    )
    return MosfetCharges(
        cgs_per_um=half,
        cgd_per_um=half,
        junction_per_um=LinearCharge(MOS_JUNCTION_CAP_PER_UM),
    )


@dataclass(frozen=True)
class MosfetTargets:
    """Terminal anchors for calibration at the reference supply."""

    on_current: float = 4.0e-4
    off_current: float = 1.0e-11
    vdd_ref: float = 0.8


def calibrate_mosfet(
    model: MosfetModel,
    targets: MosfetTargets | None = None,
    max_iterations: int = 30,
    relative_tolerance: float = 1e-9,
) -> MosfetModel:
    """Tune V_T0 and the transconductance prefactor to the anchors."""
    targets = targets or MosfetTargets()
    vdd = targets.vdd_ref

    for _ in range(max_iterations):
        scale = targets.on_current / model.on_current(vdd)
        model = replace(
            model,
            params=replace(
                model.params,
                transconductance_density=model.params.transconductance_density * scale,
            ),
        )

        def off_error(vth: float) -> float:
            probe = replace(model, params=replace(model.params, threshold_voltage=vth))
            return math.log(probe.off_current(vdd)) - math.log(targets.off_current)

        vth = brentq(off_error, 0.05, 1.2, xtol=1e-12)
        model = replace(model, params=replace(model.params, threshold_voltage=vth))

        on_err = abs(model.on_current(vdd) / targets.on_current - 1.0)
        off_err = abs(model.off_current(vdd) / targets.off_current - 1.0)
        if on_err < relative_tolerance and off_err < relative_tolerance:
            return model
    raise RuntimeError("MOSFET calibration did not converge")


@lru_cache(maxsize=None)
def nmos_32nm() -> MosfetModel:
    """Calibrated n-type 32 nm low-power baseline device."""
    return calibrate_mosfet(MosfetModel())


@lru_cache(maxsize=None)
def pmos_32nm() -> MosfetModel:
    """Calibrated p-type device (mirrored by the circuit element).

    The hole-mobility penalty shows up as a lower on-current anchor at
    the same off current.
    """
    return calibrate_mosfet(
        MosfetModel(), MosfetTargets(on_current=2.0e-4, off_current=1.0e-11)
    )
