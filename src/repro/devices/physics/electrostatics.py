"""Quasi-1D MOS electrostatics for the gated tunnel junction.

Solves the classic implicit surface-potential equation of the
charge-sheet model,

    V_G - V_FB = psi_s + sign(psi_s) * gamma * sqrt(F(psi_s)),

for the lightly doped TFET channel.  The solution provides the two
quantities the tunneling model needs: the surface potential that sets
the source-junction band bending, and the gate charge used by the C-V
model.  Inversion charge is referenced to a channel quasi-Fermi level
(electrons supplied from the drain reservoir), which is what pins the
surface potential — and therefore bends the transfer characteristic —
at high gate bias.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import ELECTRON_CHARGE, thermal_voltage
from repro.devices.physics.geometry import TfetDesign

__all__ = ["SurfacePotentialSolver"]

_MAX_EXP_ARG = 80.0


def _safe_exp(x: np.ndarray) -> np.ndarray:
    return np.exp(np.clip(x, -_MAX_EXP_ARG, _MAX_EXP_ARG))


class SurfacePotentialSolver:
    """Vectorized safeguarded-Newton solver for the surface potential."""

    def __init__(
        self,
        design: TfetDesign,
        flat_band_voltage: float = 0.0,
        channel_qfl: float = 0.8,
        temperature: float = 300.0,
    ):
        self.design = design
        self.flat_band_voltage = flat_band_voltage
        self.channel_qfl = channel_qfl
        self.vt = thermal_voltage(temperature)

        doping_m3 = design.channel_doping_cm3 * 1e6
        ni_m3 = design.semiconductor.intrinsic_density_cm3 * 1e6
        eps = design.semiconductor.permittivity
        cox = design.oxide_capacitance_per_area
        self.gamma = math.sqrt(2.0 * ELECTRON_CHARGE * eps * doping_m3) / cox
        self.minority_ratio_sq = (ni_m3 / doping_m3) ** 2

    def _charge_function(self, psi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The charge-sheet F(psi) (in volts) and its derivative dF/dpsi."""
        u = psi / self.vt
        inv_scale = self.minority_ratio_sq * _safe_exp(-self.channel_qfl / self.vt)
        exp_neg = _safe_exp(-u)
        exp_pos = _safe_exp(u)
        f = self.vt * (exp_neg + u - 1.0) + self.vt * inv_scale * (exp_pos - u - 1.0)
        df = (1.0 - exp_neg) + inv_scale * (exp_pos - 1.0)
        return f, df

    def _residual(self, psi: np.ndarray, vg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        f, df = self._charge_function(psi)
        f = np.maximum(f, 0.0)
        root = np.sqrt(f + 1e-30)
        sign = np.sign(psi)
        residual = psi + sign * self.gamma * root - (vg - self.flat_band_voltage)
        jacobian = 1.0 + sign * self.gamma * df / (2.0 * root)
        return residual, jacobian

    def surface_potential(self, vg: np.ndarray | float) -> np.ndarray:
        """Surface potential psi_s for the given gate voltage(s)."""
        vg = np.asarray(vg, dtype=float)
        scalar_input = vg.ndim == 0
        vg = np.atleast_1d(vg)
        vov = vg - self.flat_band_voltage

        # Bracket the monotone residual, then bisect with Newton polish.
        lo = np.minimum(vov - 1.0, -1.0)
        hi = np.maximum(vov + 1.0, 1.0)
        psi = np.clip(vov, lo, hi)
        for _ in range(80):
            residual, jacobian = self._residual(psi, vg)
            if np.max(np.abs(residual)) < 1e-12:
                break
            hi = np.where(residual > 0.0, psi, hi)
            lo = np.where(residual <= 0.0, psi, lo)
            newton = psi - residual / np.maximum(jacobian, 1e-12)
            converged = np.abs(residual) < 1e-12
            inside = ((newton > lo) & (newton < hi)) | converged
            psi = np.where(inside, newton, 0.5 * (lo + hi))
        return psi[0] if scalar_input else psi

    def gate_charge_per_area(self, vg: np.ndarray | float) -> np.ndarray:
        """Gate charge density Q_G = C_ox (V_G - V_FB - psi_s) in C/m^2."""
        vg = np.asarray(vg, dtype=float)
        psi = self.surface_potential(vg)
        return self.design.oxide_capacitance_per_area * (
            vg - self.flat_band_voltage - psi
        )

    def gate_capacitance_per_area(
        self, vg: np.ndarray | float, delta: float = 1e-4
    ) -> np.ndarray:
        """Small-signal gate capacitance dQ_G/dV_G in F/m^2."""
        vg = np.asarray(vg, dtype=float)
        q_hi = self.gate_charge_per_area(vg + delta)
        q_lo = self.gate_charge_per_area(vg - delta)
        return (q_hi - q_lo) / (2.0 * delta)
