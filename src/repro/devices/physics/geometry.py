"""Device geometry and process parameters for the studied Si TFET.

Defaults follow Section 2 of the paper: 32 nm channel, 2 nm gate
underlap, 1e20 cm^-3 source/drain doping, 1e15 cm^-3 channel doping,
and a 2 nm HfO2 gate insulator (relative permittivity 25).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.constants import HFO2, SILICON, Dielectric, Semiconductor


@dataclass(frozen=True)
class TfetDesign:
    """Structural description of a single-gate Si TFET.

    Lengths are in metres and dopings in cm^-3, matching the unit
    conventions of the paper's Section 2.
    """

    channel_length: float = 32e-9
    gate_underlap: float = 2e-9
    body_thickness: float = 10e-9
    oxide_thickness: float = 2e-9
    source_doping_cm3: float = 1e20
    drain_doping_cm3: float = 1e20
    channel_doping_cm3: float = 1e15
    dielectric: Dielectric = HFO2
    semiconductor: Semiconductor = SILICON

    def __post_init__(self) -> None:
        for name in (
            "channel_length",
            "body_thickness",
            "oxide_thickness",
            "source_doping_cm3",
            "drain_doping_cm3",
            "channel_doping_cm3",
        ):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.gate_underlap < 0.0:
            raise ValueError("gate_underlap cannot be negative")

    @property
    def oxide_capacitance_per_area(self) -> float:
        """Gate-oxide capacitance in F/m^2."""
        return self.dielectric.capacitance_per_area(self.oxide_thickness)

    @property
    def natural_length(self) -> float:
        """Electrostatic screening length lambda of the tunnel junction.

        The standard single-gate expression
        ``sqrt(eps_si / eps_ox * t_si * t_ox)`` sets how efficiently the
        gate potential is converted into junction field; it is the main
        geometry lever on subthreshold steepness.
        """
        ratio = (
            self.semiconductor.relative_permittivity
            / self.dielectric.relative_permittivity
        )
        return math.sqrt(ratio * self.body_thickness * self.oxide_thickness)

    @property
    def gate_area_per_um_width(self) -> float:
        """Gate area in m^2 per micrometre of device width."""
        return self.channel_length * 1e-6

    def with_oxide_thickness(self, oxide_thickness: float) -> "TfetDesign":
        """A copy with a perturbed gate-insulator thickness.

        This is the process-variation knob studied in Section 4.3 of the
        paper (gate-insulator thickness controlled to within +/-5 %).
        """
        return replace(self, oxide_thickness=oxide_thickness)

    def with_oxide_scale(self, scale: float) -> "TfetDesign":
        """A copy with the gate-insulator thickness multiplied by ``scale``."""
        if scale <= 0.0:
            raise ValueError(f"oxide scale must be positive, got {scale}")
        return self.with_oxide_thickness(self.oxide_thickness * scale)
