"""Generation of circuit-facing lookup tables from the physics model.

This is the reproduction of the paper's extraction step: "The I-V and
C-V performance data are extracted for a range of device parameters and
operating conditions [and] stored in two dimensional lookup tables,
which are used ... to implement the circuit simulation model."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.charges import ChargeFunction, LinearCharge, SmoothStepCharge
from repro.devices.physics.geometry import TfetDesign
from repro.devices.physics.tfet_model import TfetPhysicalModel
from repro.devices.tables import CurrentTable, UniformGrid

__all__ = [
    "TfetCharges",
    "build_current_table",
    "build_charge_model",
    "sample_current_grid",
]

DEFAULT_VOLTAGE_SPAN = 1.4
"""Tables cover +/-1.4 V: V_DD up to 0.9 V plus 30 % assist headroom."""

DEFAULT_GRID_POINTS = 141

OVERLAP_CAPACITANCE_PER_UM = 4.0e-17
"""Gate overlap/fringe capacitance in F per um of width (per terminal)."""


def sample_current_grid(
    model: TfetPhysicalModel,
    voltage_span: float = DEFAULT_VOLTAGE_SPAN,
    points: int = DEFAULT_GRID_POINTS,
) -> tuple[UniformGrid, UniformGrid, np.ndarray]:
    """Sample the physics model onto a raw (V_GS, V_DS) current grid.

    This is the expensive physics step; the returned samples are what
    the batch engine's on-disk device-table cache persists.
    """
    vgs_grid = UniformGrid(-voltage_span, voltage_span, points)
    vds_grid = UniformGrid(-voltage_span, voltage_span, points)
    vgs = vgs_grid.points()[:, np.newaxis]
    vds = vds_grid.points()[np.newaxis, :]
    current = np.asarray(model.current_density(vgs, vds))
    return vgs_grid, vds_grid, current


def build_current_table(
    model: TfetPhysicalModel,
    voltage_span: float = DEFAULT_VOLTAGE_SPAN,
    points: int = DEFAULT_GRID_POINTS,
) -> CurrentTable:
    """Sample the physics model onto a (V_GS, V_DS) current table (A/um)."""
    vgs_grid, vds_grid, current = sample_current_grid(model, voltage_span, points)
    return CurrentTable(
        vgs_grid, vds_grid, current, shape_voltage=model.drain_saturation_voltage
    )


@dataclass(frozen=True)
class TfetCharges:
    """Per-um-width gate charge functions of the TFET.

    TFET gate charge couples predominantly to the *drain* once the
    channel inverts (the well-known enhanced Miller capacitance of
    tunneling FETs), so the channel component sits on C_gd while C_gs
    keeps only overlap/fringe charge.
    """

    cgs_per_um: ChargeFunction
    cgd_per_um: ChargeFunction


def build_charge_model(design: TfetDesign) -> TfetCharges:
    """Derive the C-V charge model from the device geometry."""
    channel_cap_per_um = (
        design.oxide_capacitance_per_area * design.channel_length * 1e-6
    )
    cgs = LinearCharge(OVERLAP_CAPACITANCE_PER_UM)
    cgd = SmoothStepCharge(
        c_low=OVERLAP_CAPACITANCE_PER_UM,
        c_high=OVERLAP_CAPACITANCE_PER_UM + channel_cap_per_um,
        v_step=0.3,
        width=0.1,
    )
    return TfetCharges(cgs_per_um=cgs, cgd_per_um=cgd)
