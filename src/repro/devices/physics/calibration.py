"""Calibration of the TFET model to the paper's device anchors.

Section 2: "The gate work function is modulated to obtain an on current
of 1e-4 A/um and an off current of 1e-17 A/um."  The two free model
parameters mirror that procedure: ``flat_band_voltage`` plays the gate
work function (it places the tunneling onset, and with it the off-state
tunneling tail), and ``current_scale`` absorbs the tunneling
cross-section (it places the on current).  The SRH ``leakage_floor``
supplies the balance of the off current.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import brentq

from repro.devices.physics.tfet_model import TfetPhysicalModel

__all__ = ["CalibrationTargets", "CalibrationError", "calibrate_tfet"]


class CalibrationError(RuntimeError):
    """Raised when the device cannot be driven to the requested anchors."""


@dataclass(frozen=True)
class CalibrationTargets:
    """I-V anchors at the reference bias (|V_DS| = V_GS = vdd_ref)."""

    on_current: float = 1.0e-4
    off_current: float = 1.0e-17
    vdd_ref: float = 1.0
    tunneling_tail_fraction: float = 0.05
    """Fraction of the off current allowed to come from the tunneling tail."""

    def __post_init__(self) -> None:
        if not 0.0 < self.tunneling_tail_fraction < 1.0:
            raise ValueError("tunneling_tail_fraction must lie in (0, 1)")
        if self.on_current <= self.off_current:
            raise ValueError("on current must exceed off current")


def _tunneling_on_component(model: TfetPhysicalModel, vdd: float) -> float:
    gate = float(np.asarray(model.gate_transfer_density(vdd)))
    return gate * float(np.asarray(model.drain_saturation_factor(vdd)))


def _tunneling_tail(model: TfetPhysicalModel, vdd: float) -> float:
    gate = float(np.asarray(model.gate_transfer_density(0.0)))
    return gate * float(np.asarray(model.drain_saturation_factor(vdd)))


def calibrate_tfet(
    model: TfetPhysicalModel,
    targets: CalibrationTargets | None = None,
    max_iterations: int = 25,
    relative_tolerance: float = 1e-6,
) -> TfetPhysicalModel:
    """Return a copy of ``model`` meeting the calibration targets.

    Alternates two one-dimensional solves: the current scale is a pure
    multiplier on the tunneling branch, and the flat-band voltage
    monotonically controls the off-state tunneling tail, so the
    alternation converges in a handful of iterations.
    """
    targets = targets or CalibrationTargets()
    vdd = targets.vdd_ref
    tail_target = targets.tunneling_tail_fraction * targets.off_current

    floor_at_ref = float(np.asarray(model._floor_density(np.asarray(vdd))))
    floor_scale = (targets.off_current - tail_target) / max(floor_at_ref, 1e-300)
    model = replace(model, leakage_floor=model.leakage_floor * floor_scale)

    for _ in range(max_iterations):
        floor_on = float(np.asarray(model._floor_density(np.asarray(vdd))))
        tunneling_target = targets.on_current - floor_on
        if tunneling_target <= 0.0:
            raise CalibrationError("leakage floor exceeds the on-current target")
        on_now = _tunneling_on_component(model, vdd)
        if on_now <= 0.0:
            raise CalibrationError("tunneling branch produces no on current")
        model = replace(model, current_scale=model.current_scale * tunneling_target / on_now)

        def tail_error(vfb: float) -> float:
            probe = replace(model, flat_band_voltage=vfb)
            return np.log(_tunneling_tail(probe, vdd)) - np.log(tail_target)

        # The bracket stays inside the source-tunneling-dominated regime:
        # outside it the ambipolar drain branch makes the tail non-monotone.
        try:
            vfb = brentq(tail_error, -1.6, -0.2, xtol=1e-10)
        except ValueError as exc:
            raise CalibrationError(
                "flat-band voltage bracket does not contain the off-current solution"
            ) from exc
        model = replace(model, flat_band_voltage=vfb)

        on_err = abs(model.on_current(vdd) / targets.on_current - 1.0)
        off_err = abs(model.off_current(vdd) / targets.off_current - 1.0)
        if on_err < relative_tolerance and off_err < relative_tolerance:
            return model

    raise CalibrationError(
        f"calibration did not converge in {max_iterations} iterations "
        f"(on error {on_err:.2e}, off error {off_err:.2e})"
    )
