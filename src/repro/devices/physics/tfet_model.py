"""Complete terminal-current model of the studied Si nTFET.

The model composes four mechanisms, each traceable to a statement in
Section 2 of the paper:

* **Forward band-to-band tunneling** — gate electrostatics
  (:class:`SurfacePotentialSolver`) open an energy window at the
  source junction; Kane's expression converts the window into current.
  The transfer characteristic turns on steeply (sub-60 mV/dec near
  onset) and bends at high gate bias as the surface potential pins.
* **Drain saturation** — tunneling is injection-limited, so the output
  characteristic saturates early; a smooth ``1 - exp(-V_DS/v_dsat)``
  factor with mild output conductance models it.
* **Reverse conduction** — with drain and source swapped the device is
  a gated forward-biased p-i-n diode: at low reverse bias the gate
  still modulates the current, but as |V_DS| approaches 1 V the diode
  injection takes over, "the gate has lost control over the drain
  current and the TFET does not behave as a transistor" (Fig. 2(b)).
  This branch is what makes outward access transistors burn 5–9 orders
  of magnitude more static power.
* **Leakage floor** — SRH generation sets the 1e-17 A/um off current.

Currents are densities in A/um of device width; drain current is
positive for forward conduction (nTFET: drain to source).  The pTFET
is the exact mirror, built in :mod:`repro.devices.tfet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import thermal_voltage
from repro.devices.physics.electrostatics import SurfacePotentialSolver
from repro.devices.physics.geometry import TfetDesign
from repro.devices.physics.kane import KaneParameters, tunneling_current_density

__all__ = ["ReverseBranchParameters", "TfetPhysicalModel"]


@dataclass(frozen=True)
class ReverseBranchParameters:
    """Semi-empirical gated p-i-n branch for reverse (swapped) bias.

    The diode injection is represented by a quadratic-log current fit
    through three anchors (A/um at volts of reverse bias), matching the
    orders-of-magnitude structure the paper reports for outward access
    transistors: ~4 orders above the inward cell at 0.5 V, ~5 at 0.6 V,
    ~9 at 0.8 V, and near on-current magnitude at 1 V.
    """

    anchors: tuple[tuple[float, float], ...] = (
        (0.5, 5e-13),
        (0.8, 5e-8),
        (1.0, 2e-5),
    )
    gate_fade_voltage: float = 0.10
    """Reverse-bias scale over which the gate loses control.

    The gated component starts at the forward characteristic (the
    junction conductance must be single-valued at V_DS = 0, and the
    paper notes reverse current is comparable to the forward on current
    "for V_DS close to 1 V or 0 V") and decays exponentially with
    reverse bias — by a few hundred millivolts the gate has lost
    control, as Fig. 2(b) shows.
    """

    def log_polynomial(self) -> np.ndarray:
        """Coefficients of ln(J) = c2 v^2 + c1 v + c0 through the anchors."""
        volts = np.array([v for v, _ in self.anchors])
        logs = np.log(np.array([j for _, j in self.anchors]))
        return np.polyfit(volts, logs, 2)


@dataclass(frozen=True)
class TfetPhysicalModel:
    """Physics-based nTFET current-density model (A/um)."""

    design: TfetDesign = field(default_factory=TfetDesign)
    kane: KaneParameters = field(default_factory=lambda: KaneParameters(exponent_field=3.5e9))
    reverse: ReverseBranchParameters = field(default_factory=ReverseBranchParameters)

    flat_band_voltage: float = -0.68
    """Gate work-function knob; set by calibration."""

    current_scale: float = 1.0e-18
    """Kane-rate to A/um conversion; set by calibration."""

    tunnel_onset_potential: float = 1.0
    """Surface potential (V) at which the tunneling window opens."""

    occupation_width: float = 0.012
    """Fermi-tail width (V) of the tunneling window occupation."""

    channel_qfl: float = 0.8
    """Channel electron quasi-Fermi level (V) used by the electrostatics."""

    drain_saturation_voltage: float = 0.10
    """v_dsat (V): tunneling output curves saturate early."""

    output_conductance_slope: float = 0.05
    """Relative output-current slope per volt in saturation."""

    leakage_floor: float = 1.0e-17
    """SRH generation floor (A/um) at |V_DS| = 1 V; set by calibration."""

    ambipolar_suppression: float = 3.0e-5
    """Drain-side tunneling suppression from the 2 nm gate underlap."""

    ambipolar_onset_potential: float = -0.25
    """Surface potential below which drain-side tunneling opens."""

    temperature: float = 300.0

    def solver(self) -> SurfacePotentialSolver:
        """The gate-electrostatics solver configured for this device."""
        return SurfacePotentialSolver(
            self.design,
            flat_band_voltage=self.flat_band_voltage,
            channel_qfl=self.channel_qfl,
            temperature=self.temperature,
        )

    # -- forward branch -----------------------------------------------------

    def gate_transfer_density(self, vgs: np.ndarray | float) -> np.ndarray:
        """Saturated forward tunneling density (A/um) vs gate bias.

        This is the source-junction component only; drain saturation and
        leakage floors are applied in :meth:`current_density`.
        """
        vgs = np.asarray(vgs, dtype=float)
        psi = np.asarray(self.solver().surface_potential(vgs))
        window = psi - self.tunnel_onset_potential
        forward = tunneling_current_density(
            window,
            self.design.natural_length,
            self.design.semiconductor.bandgap_ev,
            self.kane,
            occupation_width=self.occupation_width,
            current_scale=self.current_scale,
        )
        ambipolar_window = self.ambipolar_onset_potential - psi
        ambipolar = self.ambipolar_suppression * tunneling_current_density(
            ambipolar_window,
            self.design.natural_length,
            self.design.semiconductor.bandgap_ev,
            self.kane,
            occupation_width=self.occupation_width,
            current_scale=self.current_scale,
        )
        return forward + ambipolar

    def drain_saturation_factor(self, vds: np.ndarray | float) -> np.ndarray:
        """Smooth output-characteristic factor for V_DS >= 0."""
        vds = np.maximum(np.asarray(vds, dtype=float), 0.0)
        onset = 1.0 - np.exp(-vds / self.drain_saturation_voltage)
        return onset * (1.0 + self.output_conductance_slope * vds)

    def _floor_density(self, vds_magnitude: np.ndarray) -> np.ndarray:
        """SRH generation leakage, smooth through zero bias."""
        vt = thermal_voltage(self.temperature)
        shape = 1.0 - np.exp(-vds_magnitude / (2.0 * vt))
        ramp = (1.0 + 0.2 * (vds_magnitude - 1.0)) / 1.0
        reference = (1.0 - np.exp(-1.0 / (2.0 * vt))) * 1.0
        return self.leakage_floor * shape * np.maximum(ramp, 0.2) / reference

    # -- reverse branch -----------------------------------------------------

    def reverse_density(
        self, vgs: np.ndarray | float, reverse_bias: np.ndarray | float
    ) -> np.ndarray:
        """Magnitude of the reverse current (A/um) for swapped terminals.

        ``reverse_bias`` is the positive magnitude of the (negative)
        drain-source voltage.
        """
        vgs = np.asarray(vgs, dtype=float)
        v = np.maximum(np.asarray(reverse_bias, dtype=float), 0.0)
        vt = thermal_voltage(self.temperature)

        c2, c1, c0 = self.reverse.log_polynomial()
        diode = np.exp(np.clip(c2 * v * v + c1 * v + c0, -300.0, 60.0))
        diode = diode * (1.0 - np.exp(-v / vt))

        gated = (
            self.gate_transfer_density(vgs)
            * self.drain_saturation_factor(v)
            * np.exp(-v / self.reverse.gate_fade_voltage)
        )
        return diode + gated + self._floor_density(v)

    # -- combined terminal current -------------------------------------------

    def current_density(
        self, vgs: np.ndarray | float, vds: np.ndarray | float
    ) -> np.ndarray:
        """Signed drain-current density (A/um) at (V_GS, V_DS).

        Positive V_DS is the forward (intended) direction; negative
        V_DS is the reverse condition of Fig. 2(b).
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs_b, vds_b = np.broadcast_arrays(vgs, vds)

        forward = (
            self.gate_transfer_density(vgs_b) * self.drain_saturation_factor(vds_b)
            + self._floor_density(np.maximum(vds_b, 0.0))
        )
        reverse = self.reverse_density(vgs_b, -vds_b)
        result = np.where(vds_b >= 0.0, forward, -reverse)
        return result if result.shape else float(result)

    # -- headline metrics -----------------------------------------------------

    def on_current(self, vdd: float = 1.0) -> float:
        """Forward on-current density at V_GS = V_DS = vdd."""
        return float(np.asarray(self.current_density(vdd, vdd)))

    def off_current(self, vdd: float = 1.0) -> float:
        """Forward off-current density at V_GS = 0, V_DS = vdd."""
        return float(np.asarray(self.current_density(0.0, vdd)))

    def subthreshold_swing_mv_per_dec(
        self, vgs_low: float = 0.1, vgs_high: float = 0.7, vds: float = 1.0, points: int = 61
    ) -> float:
        """Minimum local swing (mV/dec) over the turn-on region."""
        vgs = np.linspace(vgs_low, vgs_high, points)
        current = np.asarray(self.current_density(vgs, vds))
        decades = np.diff(np.log10(np.maximum(current, 1e-30)))
        steepest = np.max(decades / np.diff(vgs))
        if steepest <= 0.0:
            raise ValueError("transfer characteristic is not increasing in the window")
        return 1e3 / steepest
