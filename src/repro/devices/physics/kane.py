"""Kane band-to-band tunneling model.

Sentaurus' non-local tunneling model integrates the generation rate
along the tunneling path; the standard local closure of that integral
is Kane's expression

    G(xi) = A * (xi / xi_0)^P * exp(-B / xi),

with ``xi`` the junction electric field, ``P = 2.5`` for the
phonon-assisted (indirect) transitions that dominate in silicon, and
``A``/``B`` material prefactors.  The effective ``B`` used here is a
calibration parameter: together with the screening length it sets how
many current decades the gate sweep traverses, which is exactly what
the paper tunes through the gate work function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KaneParameters", "kane_generation_rate", "tunneling_current_density"]

_FIELD_FLOOR = 1e3  # V/m; avoids division blow-up for a closed junction


@dataclass(frozen=True)
class KaneParameters:
    """Kane-model coefficients for phonon-assisted tunneling in Si."""

    prefactor: float = 4.0e14
    """A in cm^-3 s^-1 at the reference field (Hurkx-style Si value)."""

    exponent_field: float = 1.1e10
    """B in V/m; the dominant steepness knob of the transfer curve."""

    power: float = 2.5
    """Field power P; 2.5 for indirect-gap phonon-assisted tunneling."""

    reference_field: float = 1e8
    """xi_0 in V/m used to non-dimensionalize the power-law term."""

    def __post_init__(self) -> None:
        if self.prefactor <= 0 or self.exponent_field <= 0 or self.reference_field <= 0:
            raise ValueError("Kane coefficients must be positive")


def kane_generation_rate(field: np.ndarray | float, params: KaneParameters) -> np.ndarray:
    """Generation rate G(xi) in cm^-3 s^-1 for junction field ``xi`` (V/m)."""
    xi = np.maximum(np.asarray(field, dtype=float), _FIELD_FLOOR)
    return (
        params.prefactor
        * (xi / params.reference_field) ** params.power
        * np.exp(-params.exponent_field / xi)
    )


def tunneling_current_density(
    window: np.ndarray | float,
    natural_length: float,
    bandgap_ev: float,
    params: KaneParameters,
    occupation_width: float = 0.015,
    current_scale: float = 1.0,
) -> np.ndarray:
    """Source-junction tunneling current density in A/um.

    ``window`` is the energy window DeltaPhi (in volts) between the
    source valence-band edge and the channel conduction-band edge; the
    junction field is approximated by the band offset divided by the
    electrostatic screening length,

        xi = (DeltaPhi + E_g) / lambda.

    A logistic occupation factor closes the current when no states are
    available to tunnel into (exponential tail for a negative window)
    and reproduces the steep turn-on; ``current_scale`` absorbs the
    geometric cross-section and is fixed by calibration.  Both the
    window softening and the occupation use the same width so the
    expression is smooth (C-infinity) through the onset.
    """
    window = np.asarray(window, dtype=float)
    x = np.clip(window / occupation_width, -200.0, 200.0)
    smoothed_window = occupation_width * np.logaddexp(0.0, x)
    occupation = 1.0 / (1.0 + np.exp(-x))

    field = (smoothed_window + bandgap_ev) / natural_length
    rate = kane_generation_rate(field, params)
    return current_scale * rate * occupation
