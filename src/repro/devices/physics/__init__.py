"""TCAD-lite device physics for silicon tunneling FETs.

The paper simulates its devices in Sentaurus TCAD with a non-local
band-to-band tunneling model and consumes the results as I-V / C-V
lookup tables.  This package is the reproduction's substitute for the
TCAD step: a quasi-1D electrostatics solver feeding Kane's tunneling
expression, a gated p-i-n model for the reverse-bias branch, and a
calibration layer that pins the device to the anchors the paper quotes
(I_on = 1e-4 A/um and I_off = 1e-17 A/um at |V_DS| = 1 V).
"""

from repro.devices.physics.calibration import CalibrationTargets, calibrate_tfet
from repro.devices.physics.electrostatics import SurfacePotentialSolver
from repro.devices.physics.geometry import TfetDesign
from repro.devices.physics.kane import KaneParameters, kane_generation_rate
from repro.devices.physics.tfet_model import TfetPhysicalModel
from repro.devices.physics.tablegen import build_current_table, build_charge_model

__all__ = [
    "CalibrationTargets",
    "calibrate_tfet",
    "SurfacePotentialSolver",
    "TfetDesign",
    "KaneParameters",
    "kane_generation_rate",
    "TfetPhysicalModel",
    "build_current_table",
    "build_charge_model",
]
