"""Process-variation sampling for the Monte-Carlo studies.

Section 4.3 of the paper restricts TFET variation to the gate-insulator
thickness, "controlled to within 5 % using novel fabrication
techniques"; channel-length variation and random dopant fluctuation are
argued to be negligible for TFETs.  We therefore sample a multiplicative
thickness scale in the +/-5 % band, independently per transistor.

Sampled scales are quantized onto a fine grid so that table generation
(the expensive physics step) can be cached and shared across samples,
assist techniques, and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OxideVariation", "quantize_scale"]

DEFAULT_QUANTUM = 0.0025


def quantize_scale(scale: float, quantum: float = DEFAULT_QUANTUM) -> float:
    """Snap a thickness scale onto the cache grid."""
    if quantum <= 0.0:
        raise ValueError("quantum must be positive")
    return round(round(scale / quantum) * quantum, 12)


@dataclass(frozen=True)
class OxideVariation:
    """Sampler for gate-insulator thickness scales.

    ``distribution`` is either ``"uniform"`` over the +/-spread band or
    ``"normal"`` with the band treated as a 3-sigma limit (samples are
    clipped to the band, mirroring a screened process).
    """

    spread: float = 0.05
    distribution: str = "uniform"
    quantum: float = DEFAULT_QUANTUM

    def __post_init__(self) -> None:
        if not 0.0 < self.spread < 0.5:
            raise ValueError(f"spread must lie in (0, 0.5), got {self.spread}")
        if self.distribution not in ("uniform", "normal"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` quantized thickness scales."""
        if count < 0:
            raise ValueError("count cannot be negative")
        if self.distribution == "uniform":
            raw = rng.uniform(1.0 - self.spread, 1.0 + self.spread, size=count)
        else:
            raw = rng.normal(1.0, self.spread / 3.0, size=count)
            raw = np.clip(raw, 1.0 - self.spread, 1.0 + self.spread)
        return np.array([quantize_scale(s, self.quantum) for s in raw])

    def sample_per_transistor(
        self, rng: np.random.Generator, sample_count: int, transistor_count: int
    ) -> np.ndarray:
        """Independent scales for each transistor of each Monte-Carlo sample.

        Returns an array of shape (sample_count, transistor_count).
        """
        flat = self.sample(rng, sample_count * transistor_count)
        return flat.reshape(sample_count, transistor_count)
