"""Charge-based capacitance primitives for device C-V models.

Transient analysis integrates terminal *charges*, not capacitances, so
every capacitive element exposes ``charge(v)`` and its derivative
``capacitance(v)``.  Using charges keeps the integrator
charge-conserving regardless of how nonlinear the C-V curve is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ChargeFunction",
    "LinearCharge",
    "SmoothStepCharge",
    "CompositeCharge",
    "MirroredCharge",
]


class ChargeFunction:
    """Interface: terminal charge as a function of branch voltage."""

    def charge(self, v: np.ndarray | float) -> np.ndarray | float:
        raise NotImplementedError

    def capacitance(self, v: np.ndarray | float) -> np.ndarray | float:
        raise NotImplementedError


@dataclass(frozen=True)
class LinearCharge(ChargeFunction):
    """A constant capacitance: q = C v."""

    capacitance_farads: float

    def __post_init__(self) -> None:
        if self.capacitance_farads < 0.0:
            raise ValueError("capacitance cannot be negative")

    def charge(self, v: np.ndarray | float) -> np.ndarray | float:
        return self.capacitance_farads * np.asarray(v, dtype=float)

    def capacitance(self, v: np.ndarray | float) -> np.ndarray | float:
        return np.full_like(np.asarray(v, dtype=float), self.capacitance_farads)


@dataclass(frozen=True)
class SmoothStepCharge(ChargeFunction):
    """Capacitance stepping from ``c_low`` to ``c_high`` around ``v_step``.

    The capacitance is a logistic step; the charge is its closed-form
    integral (a softplus), so charge and capacitance are exactly
    consistent.  This captures the bias dependence of MOS channel
    charge: below threshold only overlap/fringe capacitance remains,
    above it the full channel capacitance couples in.
    """

    c_low: float
    c_high: float
    v_step: float
    width: float = 0.08

    def __post_init__(self) -> None:
        if self.c_low < 0.0 or self.c_high < 0.0:
            raise ValueError("capacitances cannot be negative")
        if self.width <= 0.0:
            raise ValueError("step width must be positive")

    def charge(self, v: np.ndarray | float) -> np.ndarray | float:
        v = np.asarray(v, dtype=float)
        x = (v - self.v_step) / self.width
        softplus = self.width * np.logaddexp(0.0, x)
        return self.c_low * v + (self.c_high - self.c_low) * softplus

    def capacitance(self, v: np.ndarray | float) -> np.ndarray | float:
        v = np.asarray(v, dtype=float)
        x = np.clip((v - self.v_step) / self.width, -200.0, 200.0)
        sigmoid = 1.0 / (1.0 + np.exp(-x))
        return self.c_low + (self.c_high - self.c_low) * sigmoid


@dataclass(frozen=True)
class MirroredCharge(ChargeFunction):
    """Polarity mirror: q_p(v) = -q_n(-v).

    A p-type device's C-V curve is the point reflection of the n-type
    reference, exactly like its I-V curve.  The capacitance mirrors as
    c_p(v) = c_n(-v).
    """

    reference: ChargeFunction

    def charge(self, v: np.ndarray | float) -> np.ndarray | float:
        return -self.reference.charge(-np.asarray(v, dtype=float))

    def capacitance(self, v: np.ndarray | float) -> np.ndarray | float:
        return self.reference.capacitance(-np.asarray(v, dtype=float))


@dataclass(frozen=True)
class CompositeCharge(ChargeFunction):
    """Sum of several charge functions sharing the same branch voltage."""

    parts: tuple[ChargeFunction, ...]

    def charge(self, v: np.ndarray | float) -> np.ndarray | float:
        v = np.asarray(v, dtype=float)
        total = np.zeros_like(v)
        for part in self.parts:
            total = total + part.charge(v)
        return total

    def capacitance(self, v: np.ndarray | float) -> np.ndarray | float:
        v = np.asarray(v, dtype=float)
        total = np.zeros_like(v)
        for part in self.parts:
            total = total + part.capacitance(v)
        return total
