"""Lookup tables for table-driven compact device models.

The paper's methodology stores TCAD-extracted I-V and C-V data in
two-dimensional lookup tables consumed by a Verilog-A model.  This
module is the equivalent substrate: a uniform-grid bicubic
(Catmull-Rom) interpolator with *analytic* partial derivatives, so the
Newton-Raphson solver in :mod:`repro.circuit` always sees a C1-smooth
device characteristic.

Device currents span ~13 orders of magnitude (1e-17 A/um off current to
1e-4 A/um on current).  Interpolating raw currents would drown the
subthreshold decades in interpolation error, so
:class:`CurrentTable` interpolates ``asinh(I / i_ref)`` and maps back
through ``sinh`` — a smooth, sign-preserving log-like transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry import core as telemetry
from repro.verify import audits as verify_audits
from repro.verify import core as verify

__all__ = ["UniformGrid", "CubicTable2D", "CurrentTable"]


@dataclass(frozen=True)
class UniformGrid:
    """A uniformly spaced 1-D sample axis.

    The spacing and the sample vector are computed once at
    construction — ``cell_of`` sits inside every device evaluation of
    every Newton iteration, so it must not redo the division or
    allocate the linspace per call.
    """

    start: float
    stop: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 4:
            raise ValueError(f"grid needs at least 4 points for cubic patches, got {self.count}")
        if not self.stop > self.start:
            raise ValueError(f"grid stop ({self.stop}) must exceed start ({self.start})")
        step = (self.stop - self.start) / (self.count - 1)
        points = np.linspace(self.start, self.stop, self.count)
        points.setflags(write=False)
        object.__setattr__(self, "_step", step)
        object.__setattr__(self, "_inv_step", 1.0 / step)
        object.__setattr__(self, "_points", points)

    @property
    def step(self) -> float:
        """Spacing between adjacent samples."""
        return self._step

    def points(self) -> np.ndarray:
        """The sample coordinates as a read-only vector of length ``count``."""
        return self._points

    def cell_of(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map coordinates to (cell index, normalized offset in [0, 1]).

        Coordinates are clamped to the grid domain; callers handle
        out-of-domain extension separately.
        """
        # np.minimum/np.maximum instead of np.clip: same result, none
        # of the dispatch overhead (this runs several times per Newton
        # iteration).  pos >= 0 after the clamp, so integer truncation
        # is floor and only the upper cell bound needs enforcing.
        xc = np.minimum(np.maximum(x, self.start), self.stop)
        pos = (xc - self.start) * self._inv_step
        idx = np.minimum(pos.astype(np.intp), self.count - 2)
        t = pos - idx
        return idx, t


def _catmull_rom_weights(t: np.ndarray) -> np.ndarray:
    """Catmull-Rom blending weights for the 4 support points of a cell.

    Returns an array of shape ``(4,) + t.shape``.
    """
    t2 = t * t
    t3 = t2 * t
    w0 = 0.5 * (-t3 + 2.0 * t2 - t)
    w1 = 0.5 * (3.0 * t3 - 5.0 * t2 + 2.0)
    w2 = 0.5 * (-3.0 * t3 + 4.0 * t2 + t)
    w3 = 0.5 * (t3 - t2)
    return np.stack([w0, w1, w2, w3])


def _catmull_rom_dweights(t: np.ndarray) -> np.ndarray:
    """Derivative of the Catmull-Rom weights with respect to ``t``."""
    t2 = t * t
    w0 = 0.5 * (-3.0 * t2 + 4.0 * t - 1.0)
    w1 = 0.5 * (9.0 * t2 - 10.0 * t)
    w2 = 0.5 * (-9.0 * t2 + 8.0 * t + 1.0)
    w3 = 0.5 * (3.0 * t2 - 2.0 * t)
    return np.stack([w0, w1, w2, w3])


_CATMULL_ROM_BASIS = 0.5 * np.array(
    [
        [0.0, 2.0, 0.0, 0.0],
        [-1.0, 0.0, 1.0, 0.0],
        [2.0, -5.0, 4.0, -1.0],
        [-1.0, 3.0, -3.0, 1.0],
    ]
)
"""Power-basis form of the weights above: w_k(t) = sum_a B[a, k] t^a."""


class CubicTable2D:
    """C1 bicubic interpolation of samples on a uniform 2-D grid.

    Outside the sampled domain the surface continues as the tangent
    plane (including the mixed term), so values *and* first derivatives
    are continuous across the domain boundary.

    Evaluation runs on per-cell polynomial coefficients baked at
    construction (two batched matmuls per call); the pre-optimization
    weight-stacking einsum kernel is retained behind
    ``reference_evaluation`` so benchmarks can reconstruct the seed hot
    path and tests can pin the two kernels to each other.
    """

    reference_evaluation = False
    """Class-wide switch routing :meth:`evaluate` through the retained
    seed kernel.  For benchmarks and tests only."""

    def __init__(self, x_grid: UniformGrid, y_grid: UniformGrid, values: np.ndarray):
        values = np.asarray(values, dtype=float)
        if values.shape != (x_grid.count, y_grid.count):
            raise ValueError(
                f"values shape {values.shape} does not match grid "
                f"({x_grid.count}, {y_grid.count})"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError("table values must be finite")
        self.x_grid = x_grid
        self.y_grid = y_grid
        self.values = values
        self._padded = _pad_linear(values)
        self._padded_flat = self._padded.reshape(-1)
        # Per-cell bicubic polynomial coefficients, baked once:
        #   f(tx, ty) = sum_ab C[a, b] tx^a ty^b  within cell (ix, iy),
        # C = B . patch . B^T with B the power-basis Catmull-Rom matrix.
        # Evaluation then gathers one (4, 4) block per point and runs
        # two batched matmuls — no per-call weight stacking or einsum.
        windows = np.lib.stride_tricks.sliding_window_view(self._padded, (4, 4))
        coeffs = np.einsum(
            "ak,ijkl,bl->ijab", _CATMULL_ROM_BASIS, windows, _CATMULL_ROM_BASIS
        )
        self._coeffs = np.ascontiguousarray(
            coeffs.reshape(-1, 4, 4)
        )  # indexed by ix * (ny - 1) + iy
        tel = telemetry.active()
        if tel is not None:
            tel.count("tables.builds")
            tel.count("tables.build_points", values.size)

    def evaluate(
        self, x: np.ndarray | float, y: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interpolate ``(f, df/dx, df/dy)`` at the given coordinates.

        Accepts scalars or broadcast-compatible arrays and returns
        arrays of the broadcast shape (0-d arrays for scalar input).
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            x, y = np.broadcast_arrays(x, y)

        # Hot path: a direct module-global read instead of the
        # telemetry.active() call — this runs once per device group per
        # Newton iteration, and the function-call overhead is
        # measurable against the vectorized interpolation below.
        tel = telemetry._session
        if tel is not None:
            tel.count("tables.evals")
            tel.count("tables.eval_points", x.size)

        xc = np.minimum(np.maximum(x, self.x_grid.start), self.x_grid.stop)
        yc = np.minimum(np.maximum(y, self.y_grid.start), self.y_grid.stop)

        # Same direct module-global read as telemetry above: when
        # verification is off, the audit costs one attribute load.
        ver = verify._session
        if ver is not None and ver.options.table_audit and ver.table_due():
            verify_audits.audit_table(ver, self, xc, yc)

        if CubicTable2D.reference_evaluation:
            f, fx, fy, fxy = self._evaluate_inside_reference(xc, yc)
        else:
            f, fx, fy, fxy = self._evaluate_inside(xc, yc)

        dx = x - xc
        dy = y - yc
        outside = (dx != 0.0) | (dy != 0.0)
        if np.any(outside):
            value = f + fx * dx + fy * dy + fxy * dx * dy
            dfdx = fx + fxy * dy
            dfdy = fy + fxy * dx
            return value, dfdx, dfdy
        return f, fx, fy

    def __call__(self, x: np.ndarray | float, y: np.ndarray | float) -> np.ndarray:
        """Interpolated value only (same domain handling as evaluate)."""
        return self.evaluate(x, y)[0]

    def _evaluate_inside(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        ix, tx = self.x_grid.cell_of(x)
        iy, ty = self.y_grid.cell_of(y)

        # Gather the baked per-cell coefficient blocks and contract the
        # power bases (value row/column 0, derivative row/column 1) in
        # two batched matmuls: out = U . C . V, shape (N, 2, 2).
        cells = self._coeffs[(ix * (self.y_grid.count - 1) + iy).reshape(-1)]
        m = cells.shape[0]
        txf = tx.reshape(-1)
        tyf = ty.reshape(-1)
        u = np.empty((m, 2, 4))
        v = np.empty((m, 4, 2))
        tx2 = txf * txf
        u[:, 0, 0] = 1.0
        u[:, 0, 1] = txf
        u[:, 0, 2] = tx2
        u[:, 0, 3] = tx2 * txf
        u[:, 1, 0] = 0.0
        u[:, 1, 1] = 1.0
        u[:, 1, 2] = 2.0 * txf
        u[:, 1, 3] = 3.0 * tx2
        ty2 = tyf * tyf
        v[:, 0, 0] = 1.0
        v[:, 1, 0] = tyf
        v[:, 2, 0] = ty2
        v[:, 3, 0] = ty2 * tyf
        v[:, 0, 1] = 0.0
        v[:, 1, 1] = 1.0
        v[:, 2, 1] = 2.0 * tyf
        v[:, 3, 1] = 3.0 * ty2
        out = u @ cells @ v

        shape = x.shape
        inv_hx = self.x_grid._inv_step
        inv_hy = self.y_grid._inv_step
        f = out[:, 0, 0].reshape(shape)
        fx = (out[:, 1, 0] * inv_hx).reshape(shape)
        fy = (out[:, 0, 1] * inv_hy).reshape(shape)
        fxy = (out[:, 1, 1] * (inv_hx * inv_hy)).reshape(shape)
        return f, fx, fy, fxy

    def _evaluate_inside_reference(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The seed evaluation kernel, kept verbatim (see class docs)."""
        ix, tx = self.x_grid.cell_of(x)
        iy, ty = self.y_grid.cell_of(y)

        wx = _catmull_rom_weights(tx)
        dwx = _catmull_rom_dweights(tx)
        wy = _catmull_rom_weights(ty)
        dwy = _catmull_rom_dweights(ty)

        # Gather the 4x4 support patch in one flat take; +a/+b offsets
        # account for the ghost padding ring.
        ny = self._padded.shape[1]
        base = ix * ny + iy
        offsets = (np.arange(4)[:, np.newaxis] * ny + np.arange(4)).reshape(4, 4, 1)
        patch = self._padded_flat[base.reshape(-1) + offsets].reshape((4, 4) + x.shape)

        # Contract value and derivative weights in one einsum each axis:
        # rows of WX/WY are (weights, derivative weights).
        wxs = np.stack([wx, dwx])
        wys = np.stack([wy, dwy])
        out = np.einsum("ua...,vb...,ab...->uv...", wxs, wys, patch)
        f = out[0, 0]
        fx = out[1, 0] / self.x_grid.step
        fy = out[0, 1] / self.y_grid.step
        fxy = out[1, 1] / (self.x_grid.step * self.y_grid.step)
        return f, fx, fy, fxy


def _pad_linear(values: np.ndarray) -> np.ndarray:
    """Pad a 2-D sample array with one linearly extrapolated ghost ring."""
    nx, ny = values.shape
    padded = np.empty((nx + 2, ny + 2))
    padded[1:-1, 1:-1] = values
    padded[0, 1:-1] = 2.0 * values[0] - values[1]
    padded[-1, 1:-1] = 2.0 * values[-1] - values[-2]
    padded[:, 0] = 2.0 * padded[:, 1] - padded[:, 2]
    padded[:, -1] = 2.0 * padded[:, -2] - padded[:, -3]
    return padded


class CurrentTable:
    """Device current table interpolated in shape-factored log space.

    A raw log/asinh compression of ``i(V_GS, V_DS)`` cannot resolve the
    high-current zero crossing at ``V_DS = 0`` (the compressed surface
    jumps by ~15 within microvolts, so any practical grid reports a
    vanishing output conductance in the resistive region).  This table
    therefore factors the current as

        i(V_GS, V_DS) = shape(V_DS) * y(V_GS, V_DS),

    where ``shape(v) = sign(v) * (1 - exp(-|v| / v_shape))`` carries the
    sign and the resistive-to-saturated drain behaviour analytically,
    and the strictly positive residue ``y`` — finite and smooth through
    ``V_DS = 0`` — is interpolated as ``ln(y)``.  Log interpolation
    preserves relative accuracy across the device's ~13 decades, and
    the analytic shape restores the exact linear-region conductance.

    The factorization requires ``i`` and ``shape`` to share their sign,
    which holds for the unidirectional TFET (forward tunneling for
    V_DS > 0, p-i-n reverse conduction for V_DS < 0).
    """

    DEFAULT_SHAPE_VOLTAGE = 0.12

    def __init__(
        self,
        vgs_grid: UniformGrid,
        vds_grid: UniformGrid,
        current: np.ndarray,
        shape_voltage: float = DEFAULT_SHAPE_VOLTAGE,
    ):
        if shape_voltage <= 0.0:
            raise ValueError(f"shape_voltage must be positive, got {shape_voltage}")
        self.shape_voltage = shape_voltage

        current = np.asarray(current, dtype=float)
        vds = vds_grid.points()
        shape = self._shape(vds)[np.newaxis, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            residue = np.where(np.abs(shape) > 0.0, current / shape, np.nan)

        # The V_DS = 0 column (0/0) is filled from its neighbours; the
        # residue is smooth there by construction.
        bad = ~np.isfinite(residue)
        if np.any(bad):
            cols = np.unique(np.nonzero(bad)[1])
            for col in cols:
                left = residue[:, col - 1] if col > 0 else residue[:, col + 1]
                right = residue[:, col + 1] if col < residue.shape[1] - 1 else left
                residue[:, col] = 0.5 * (left + right)
        if np.any(residue <= 0.0):
            raise ValueError(
                "current/shape residue must be strictly positive; the device "
                "current must share the sign of the drain shape function"
            )
        self._table = CubicTable2D(vgs_grid, vds_grid, np.log(residue))
        tel = telemetry.active()
        if tel is not None:
            tel.count("tables.current_builds")

    def _shape(self, vds: np.ndarray) -> np.ndarray:
        return np.sign(vds) * (1.0 - np.exp(-np.abs(vds) / self.shape_voltage))

    def _shape_derivative(self, vds: np.ndarray) -> np.ndarray:
        return np.exp(-np.abs(vds) / self.shape_voltage) / self.shape_voltage

    @property
    def vgs_grid(self) -> UniformGrid:
        return self._table.x_grid

    @property
    def vds_grid(self) -> UniformGrid:
        return self._table.y_grid

    def evaluate(
        self, vgs: np.ndarray | float, vds: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(i, di/dvgs, di/dvds)`` in the stored current units."""
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        if vgs.shape != vds.shape:
            vgs_b, vds_b = np.broadcast_arrays(vgs, vds)
        else:
            vgs_b, vds_b = vgs, vds

        z, dz_dvgs, dz_dvds = self._table.evaluate(vgs_b, vds_b)
        residue = np.exp(z)
        shape = self._shape(vds_b)
        current = shape * residue
        di_dvgs = current * dz_dvgs
        di_dvds = self._shape_derivative(vds_b) * residue + current * dz_dvds
        return current, di_dvgs, di_dvds

    def __call__(self, vgs: np.ndarray | float, vds: np.ndarray | float) -> np.ndarray:
        """Interpolated current only."""
        return self.evaluate(vgs, vds)[0]
