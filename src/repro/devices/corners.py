"""Process-corner device cards.

The Monte-Carlo engine samples the +/-5 % gate-insulator band
statistically; corner cards pin the band's extremes for worst-case
sign-off the way a PDK does.  A *fast* TFET has the thinnest oxide
(strongest gate coupling, highest on-current); a *slow* one the
thickest.  Mixed corners (fast pull-downs with slow access transistors
and vice versa) stress the write and read contests directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.library import tfet_device
from repro.devices.tfet import TfetTableModel
from repro.sram.cell import TfetDeviceSet

__all__ = ["Corner", "CORNERS", "corner_device", "corner_device_set"]

CORNER_SPREAD = 0.05
"""The paper's +/-5 % gate-insulator thickness control band."""


@dataclass(frozen=True)
class Corner:
    """A named process corner as oxide-thickness scales."""

    name: str
    inverter_scale: float
    """t_ox scale for the cross-coupled inverter devices."""

    access_scale: float
    """t_ox scale for the access transistors (and read buffer)."""

    def describe(self) -> str:
        def label(scale: float) -> str:
            if scale < 1.0:
                return "fast"
            if scale > 1.0:
                return "slow"
            return "typical"

        return (
            f"{self.name}: {label(self.inverter_scale)} inverters, "
            f"{label(self.access_scale)} access"
        )


CORNERS: dict[str, Corner] = {
    "tt": Corner("tt", 1.0, 1.0),
    "ff": Corner("ff", 1.0 - CORNER_SPREAD, 1.0 - CORNER_SPREAD),
    "ss": Corner("ss", 1.0 + CORNER_SPREAD, 1.0 + CORNER_SPREAD),
    # Write worst case: strong pull-downs fighting a weak access device.
    "fs": Corner("fs", 1.0 - CORNER_SPREAD, 1.0 + CORNER_SPREAD),
    # Read worst case: a strong access device disturbing weak pull-downs.
    "sf": Corner("sf", 1.0 + CORNER_SPREAD, 1.0 - CORNER_SPREAD),
}


def corner_device(scale: float) -> TfetTableModel:
    """The (cached) TFET card at one oxide-thickness scale."""
    return tfet_device(scale)


def corner_device_set(corner: Corner | str) -> TfetDeviceSet:
    """Device cards for a whole cell at the named corner."""
    if isinstance(corner, str):
        try:
            corner = CORNERS[corner]
        except KeyError:
            known = ", ".join(sorted(CORNERS))
            raise KeyError(f"unknown corner {corner!r}; known: {known}") from None
    inverter = corner_device(corner.inverter_scale)
    access = corner_device(corner.access_scale)
    return TfetDeviceSet(
        pulldown_left=inverter,
        pulldown_right=inverter,
        pullup_left=inverter,
        pullup_right=inverter,
        access_left=access,
        access_right=access,
        read_buffer=access,
    )
