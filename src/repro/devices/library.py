"""Cached device library shared by cells, experiments, and benchmarks.

The nominal TFET is calibrated once (work function + cross-section to
the paper's I_on/I_off anchors) and then *perturbed* — never
recalibrated — for process variation: a fab does not re-tune the work
function per die, so a thickness shift must show up as a device shift.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.devices.mosfet import MosfetModel, nmos_32nm, pmos_32nm
from repro.devices.physics.calibration import CalibrationTargets, calibrate_tfet
from repro.devices.physics.tablegen import build_charge_model, build_current_table
from repro.devices.physics.tfet_model import TfetPhysicalModel
from repro.devices.tfet import TfetTableModel
from repro.devices.variation import quantize_scale

__all__ = [
    "nominal_tfet_physics",
    "tfet_device",
    "nmos_device",
    "pmos_device",
    "clear_device_cache",
]


@lru_cache(maxsize=None)
def nominal_tfet_physics() -> TfetPhysicalModel:
    """The calibrated nominal Si TFET (I_on 1e-4, I_off 1e-17 A/um)."""
    return calibrate_tfet(TfetPhysicalModel(), CalibrationTargets())


@lru_cache(maxsize=None)
def _tfet_device_quantized(oxide_scale: float, table_points: int) -> TfetTableModel:
    nominal = nominal_tfet_physics()
    design = nominal.design.with_oxide_scale(oxide_scale)
    perturbed = replace(nominal, design=design)
    table = build_current_table(perturbed, points=table_points)
    charges = build_charge_model(design)
    return TfetTableModel(table=table, charges=charges)


def tfet_device(oxide_scale: float = 1.0, table_points: int = 141) -> TfetTableModel:
    """A table-backed TFET at the given gate-oxide thickness scale.

    Scales are quantized so Monte-Carlo sampling reuses cached tables.
    """
    return _tfet_device_quantized(quantize_scale(oxide_scale), table_points)


def nmos_device() -> MosfetModel:
    """The calibrated 32 nm low-power n-type MOSFET baseline."""
    return nmos_32nm()


def pmos_device() -> MosfetModel:
    """The calibrated 32 nm low-power p-type MOSFET baseline."""
    return pmos_32nm()


def clear_device_cache() -> None:
    """Drop all cached devices (mainly for tests that tweak globals)."""
    nominal_tfet_physics.cache_clear()
    _tfet_device_quantized.cache_clear()
    nmos_32nm.cache_clear()
    pmos_32nm.cache_clear()
