"""Cached device library shared by cells, experiments, and benchmarks.

The nominal TFET is calibrated once (work function + cross-section to
the paper's I_on/I_off anchors) and then *perturbed* — never
recalibrated — for process variation: a fab does not re-tune the work
function per die, so a thickness shift must show up as a device shift.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.devices.mosfet import MosfetModel, nmos_32nm, pmos_32nm
from repro.devices.physics.calibration import CalibrationTargets, calibrate_tfet
from repro.devices.physics.tablegen import (
    build_charge_model,
    sample_current_grid,
)
from repro.devices.physics.tfet_model import TfetPhysicalModel
from repro.devices.tables import CurrentTable, UniformGrid
from repro.devices.tfet import TfetTableModel
from repro.devices.variation import quantize_scale

__all__ = [
    "nominal_tfet_physics",
    "tfet_device",
    "nmos_device",
    "pmos_device",
    "clear_device_cache",
    "set_table_cache",
    "table_cache",
]

_table_cache = None
"""Optional :class:`repro.engine.cache.DeviceTableCache`; see
:func:`set_table_cache`."""


def set_table_cache(cache) -> None:
    """Install (or with ``None`` remove) an on-disk table cache.

    The batch engine's workers call this from their initializer so that
    the expensive physics sampling behind :func:`tfet_device` is paid
    once per unique quantized scale across the whole worker pool rather
    than once per process.  The in-process ``lru_cache`` stays in front
    of the disk layer, so installing a cache never slows the hot path.
    """
    global _table_cache
    _table_cache = cache


def table_cache():
    """The installed on-disk table cache, or ``None``."""
    return _table_cache


@lru_cache(maxsize=None)
def nominal_tfet_physics() -> TfetPhysicalModel:
    """The calibrated nominal Si TFET (I_on 1e-4, I_off 1e-17 A/um)."""
    return calibrate_tfet(TfetPhysicalModel(), CalibrationTargets())


@lru_cache(maxsize=None)
def _tfet_device_quantized(oxide_scale: float, table_points: int) -> TfetTableModel:
    nominal = nominal_tfet_physics()
    design = nominal.design.with_oxide_scale(oxide_scale)
    perturbed = replace(nominal, design=design)
    table = _current_table_cached(perturbed, oxide_scale, table_points)
    charges = build_charge_model(design)
    return TfetTableModel(table=table, charges=charges)


def _current_table_cached(model, oxide_scale: float, table_points: int) -> CurrentTable:
    """Build the current table, going through the disk cache if installed.

    Cache entries hold the raw sampled grid; interpolant construction is
    repeated on load (cheap, deterministic), so hits are bit-identical
    to fresh builds.
    """
    cache = _table_cache
    if cache is None:
        grid_v, grid_d, current = sample_current_grid(model, points=table_points)
        return CurrentTable(
            grid_v, grid_d, current, shape_voltage=model.drain_saturation_voltage
        )
    payload = cache.load(oxide_scale, table_points)
    if payload is not None:
        vgs = payload["vgs"]
        vds = payload["vds"]
        return CurrentTable(
            UniformGrid(float(vgs[0]), float(vgs[1]), int(vgs[2])),
            UniformGrid(float(vds[0]), float(vds[1]), int(vds[2])),
            payload["current"],
            shape_voltage=payload["shape_voltage"],
        )
    grid_v, grid_d, current = sample_current_grid(model, points=table_points)
    cache.store(
        oxide_scale,
        table_points,
        current,
        (grid_v.start, grid_v.stop, grid_v.count),
        (grid_d.start, grid_d.stop, grid_d.count),
        model.drain_saturation_voltage,
    )
    return CurrentTable(
        grid_v, grid_d, current, shape_voltage=model.drain_saturation_voltage
    )


def tfet_device(oxide_scale: float = 1.0, table_points: int = 141) -> TfetTableModel:
    """A table-backed TFET at the given gate-oxide thickness scale.

    Scales are quantized so Monte-Carlo sampling reuses cached tables.
    """
    return _tfet_device_quantized(quantize_scale(oxide_scale), table_points)


def nmos_device() -> MosfetModel:
    """The calibrated 32 nm low-power n-type MOSFET baseline."""
    return nmos_32nm()


def pmos_device() -> MosfetModel:
    """The calibrated 32 nm low-power p-type MOSFET baseline."""
    return pmos_32nm()


def clear_device_cache() -> None:
    """Drop all cached devices (mainly for tests that tweak globals)."""
    nominal_tfet_physics.cache_clear()
    _tfet_device_quantized.cache_clear()
    nmos_32nm.cache_clear()
    pmos_32nm.cache_clear()
