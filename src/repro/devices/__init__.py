"""Device models: TFET physics, table-based TFET, analytic MOSFET,
and variation sampling.

Process-corner cards live in :mod:`repro.devices.corners`; they are not
re-exported here because they build on the SRAM cell's device-set type
(importing them at package level would be circular).
"""

from repro.devices.library import (
    nmos_device,
    nominal_tfet_physics,
    pmos_device,
    tfet_device,
)
from repro.devices.mosfet import MosfetModel, nmos_32nm, pmos_32nm
from repro.devices.tfet import TfetTableModel
from repro.devices.variation import OxideVariation

__all__ = [
    "nmos_device",
    "nominal_tfet_physics",
    "pmos_device",
    "tfet_device",
    "MosfetModel",
    "nmos_32nm",
    "pmos_32nm",
    "TfetTableModel",
    "OxideVariation",
]
