"""Table-driven TFET compact model for circuit simulation.

Mirrors the paper's flow: the physics model (the TCAD stand-in) is
sampled once into a two-dimensional lookup table, and the circuit
simulator only ever touches the table.  Interpolation is C1 with
analytic derivatives, so Newton-Raphson receives consistent
(current, transconductance, output conductance) triples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.physics.tablegen import TfetCharges
from repro.devices.tables import CurrentTable

__all__ = ["TfetTableModel"]


@dataclass(frozen=True)
class TfetTableModel:
    """n-type reference TFET backed by an I-V lookup table.

    ``charges`` carries the C-V model extracted alongside the current
    table.  The p-type device is the exact mirror and is produced by
    the circuit element's polarity handling, matching the symmetric
    device pair of the paper's Fig. 2(a).
    """

    table: CurrentTable
    charges: TfetCharges

    def current_density(
        self, vgs: np.ndarray | float, vds: np.ndarray | float
    ) -> np.ndarray:
        """Signed drain-current density (A/um)."""
        return self.table(vgs, vds)

    def evaluate_density(
        self, vgs: np.ndarray | float, vds: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current density and analytic partial derivatives (A/um, S/um)."""
        return self.table.evaluate(vgs, vds)

    def on_current(self, vdd: float = 1.0) -> float:
        """Forward on-current density at V_GS = V_DS = vdd."""
        return float(np.asarray(self.table(vdd, vdd)))

    def off_current(self, vdd: float = 1.0) -> float:
        """Forward off-current density at V_GS = 0, V_DS = vdd."""
        return float(np.asarray(self.table(0.0, vdd)))
